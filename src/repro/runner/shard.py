"""The sharded batch coordinator: fan (system, chain) jobs over N
shard workers with work-stealing, bounded retries, and a merge that is
byte-identical to a serial run.

The job list is split into :class:`ShardChunk` units of consecutive
jobs.  A :class:`ShardCoordinator` drives one dispatch thread per
worker; each thread pulls the next eligible chunk from a shared,
lock-protected scheduler, runs it on its worker, and posts the results
back.  Three scheduler behaviors make the fan-out robust:

* **Work-stealing** — an idle worker with no pending chunk duplicates
  the oldest still-running chunk (one extra claimant at most), so a
  straggler or silently-wedged worker cannot stall the tail of a run.
  Results are deterministic per job, so the first completion wins and
  the duplicate is discarded.
* **Retry with backoff** — a chunk whose worker died
  (:class:`WorkerUnavailable`) is requeued under the coordinator's
  :class:`~repro.runner.retry.RetryPolicy`: bounded attempts,
  exponentially delayed eligibility.  Exhausting the budget raises
  :class:`ShardExecutionError`.
* **Keyed merge** — every job's deterministic export depends only on
  the job itself, so merging is a pure keyed union: results are
  reassembled in global submission order and the combined
  :class:`~repro.runner.batch.BatchResult` export is byte-identical to
  ``BatchRunner(workers=1)`` over the same jobs, regardless of chunk
  placement, steals, or retries.

Two worker kinds implement the same ``run_chunk`` protocol:
:class:`LocalShardWorker` owns one OS process (killed workers are
respawned transparently on the next chunk), and
:class:`RemoteShardWorker` posts chunks to a ``repro shard-worker``
HTTP endpoint via the :class:`~repro.service.http.ServiceClient`.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .batch import BatchResult, _build_cache
from .cache import merge_stats
from .jobs import AnalysisJob, JobResult, execute_job
from .progress import NULL_LOG, ShardLog
from .retry import RetryPolicy
from .shardstate import ShardExecutionError, WorkerUnavailable, _ShardState

__all__ = [
    "ShardChunk",
    "ShardCoordinator",
    "ShardExecutionError",
    "WorkerUnavailable",
    "LocalShardWorker",
    "RemoteShardWorker",
    "local_shard_workers",
    "make_chunks",
    "run_sharded",
]


@dataclass(frozen=True)
class ShardChunk:
    """A contiguous slice of the global job list.

    ``start`` is the offset of ``jobs[0]`` in the submitted list — the
    merge key that puts results back in submission order no matter
    which worker ran the chunk.
    """

    index: int
    start: int
    jobs: Tuple[AnalysisJob, ...]

    def __len__(self) -> int:
        return len(self.jobs)


def make_chunks(
    jobs: Sequence[AnalysisJob], chunk_size: int
) -> List[ShardChunk]:
    """Split ``jobs`` into consecutive chunks of ``chunk_size``."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        ShardChunk(index=i, start=start, jobs=tuple(jobs[start : start + chunk_size]))
        for i, start in enumerate(range(0, len(jobs), chunk_size))
    ]


# ----------------------------------------------------------------------
# Local worker processes
# ----------------------------------------------------------------------
def _shard_worker_loop(
    task_queue: Any,
    result_queue: Any,
    cache_maxsize: int,
    cache_dir: Optional[str],
    use_cache: bool,
) -> None:
    """Child-process loop: one cache, chunks in, result lists out.

    Runs until the ``None`` sentinel.  A job exception is reported as
    an ``("error", ...)`` message rather than crashing the process —
    bad input is a batch bug, not a worker death, and must not be
    retried.
    """
    cache = _build_cache(use_cache, cache_dir, cache_maxsize)
    # Persistent caches drop integrity-failed disk entries and count
    # them; the per-chunk delta rides back so the coordinator can
    # account for corruption observed inside worker processes.
    store = getattr(cache, "disk", None)
    while True:
        item = task_queue.get()
        if item is None:
            break
        chunk_index, jobs = item
        dropped_before = store.corrupt_dropped if store is not None else 0
        try:
            results = [execute_job(job, cache=cache) for job in jobs]
        except Exception as exc:
            result_queue.put(
                ("error", chunk_index, f"{type(exc).__name__}: {exc}")
            )
        else:
            dropped = (
                store.corrupt_dropped - dropped_before if store is not None else 0
            )
            result_queue.put(("ok", chunk_index, (results, dropped)))


class LocalShardWorker:
    """One shard backed by a dedicated OS process.

    The process is started lazily and *respawned* transparently when it
    died (crash, OOM kill, or :meth:`kill` from a failure-injection
    test) — the coordinator owns the decision to retry the chunk; the
    worker merely reports the death as :class:`WorkerUnavailable` and
    is ready again for the next ``run_chunk``.  Queues are re-created
    on respawn so a half-delivered message from the dead incarnation
    can never corrupt a fresh chunk.
    """

    def __init__(
        self,
        name: str = "local",
        *,
        use_cache: bool = True,
        cache_dir: Optional[str] = None,
        cache_maxsize: int = 200_000,
        poll_interval: float = 0.05,
    ):
        self.name = name
        self.use_cache = use_cache
        self.cache_dir = None if cache_dir is None else str(cache_dir)
        self.cache_maxsize = cache_maxsize
        self.poll_interval = poll_interval
        self._ctx = multiprocessing.get_context()
        self._process: Optional[multiprocessing.process.BaseProcess] = None
        self._task_queue: Optional[Any] = None
        self._result_queue: Optional[Any] = None
        #: Observed worker deaths (each triggers a respawn on next use).
        self.respawns = 0
        #: Corrupt persistent-cache entries this worker's processes
        #: detected and dropped (summed into the coordinator stats).
        self.corrupt_dropped = 0
        #: Failure-injection seam: kill the process right after the
        #: next N chunk dispatches (deterministic worker-death tests).
        self.kill_next_dispatches = 0

    # -- process lifecycle ---------------------------------------------
    def _ensure_process(self) -> None:
        if self._process is not None and self._process.is_alive():
            return
        if self._process is not None:
            self._discard_process()
        self._task_queue = self._ctx.Queue()
        self._result_queue = self._ctx.Queue()
        self._process = self._ctx.Process(
            target=_shard_worker_loop,
            args=(
                self._task_queue,
                self._result_queue,
                self.cache_maxsize,
                self.cache_dir,
                self.use_cache,
            ),
            name=f"repro-shard-{self.name}",
            daemon=True,
        )
        self._process.start()

    def _discard_process(self) -> None:
        if self._process is not None:
            if self._process.is_alive():  # pragma: no cover - defensive
                self._process.terminate()
            self._process.join(timeout=5.0)
            self._process = None
        for q in (self._task_queue, self._result_queue):
            if q is not None:
                q.close()
        self._task_queue = None
        self._result_queue = None

    def kill(self) -> None:
        """Hard-kill the worker process (failure injection); the next
        :meth:`run_chunk` respawns a fresh one."""
        if self._process is not None and self._process.is_alive():
            self._process.kill()
            self._process.join(timeout=5.0)

    def close(self) -> None:
        """Shut the worker process down cleanly (idempotent)."""
        if self._process is not None and self._process.is_alive():
            assert self._task_queue is not None
            self._task_queue.put(None)
            self._process.join(timeout=5.0)
        self._discard_process()

    # -- the worker protocol -------------------------------------------
    def run_chunk(self, chunk: ShardChunk) -> List[JobResult]:
        """Run one chunk on the worker process.

        Raises :class:`WorkerUnavailable` when the process dies before
        delivering the chunk's results — the retryable failure mode.  A
        job-level exception inside the chunk (bad input) propagates as
        a plain ``RuntimeError`` and is *not* retried.
        """
        self._ensure_process()
        assert self._task_queue is not None and self._result_queue is not None
        process, result_queue = self._process, self._result_queue
        self._task_queue.put((chunk.index, list(chunk.jobs)))
        if self.kill_next_dispatches > 0:
            self.kill_next_dispatches -= 1
            self.kill()
        while True:
            try:
                kind, index, payload = result_queue.get(timeout=self.poll_interval)
            except queue.Empty:
                assert process is not None
                if process.is_alive():
                    continue
                # The process died.  Drain once more: the result may
                # have been enqueued in its final instants.
                try:
                    kind, index, payload = result_queue.get(timeout=0.2)
                except queue.Empty:
                    exitcode = process.exitcode
                    self._discard_process()
                    self.respawns += 1
                    raise WorkerUnavailable(
                        f"shard worker {self.name!r} died "
                        f"(exit code {exitcode}) while running chunk "
                        f"{chunk.index}"
                    ) from None
            if index != chunk.index:
                # Stale message from a killed incarnation's chunk that
                # completed after the parent gave up on it; drop it.
                continue
            if kind == "error":
                raise RuntimeError(
                    f"shard chunk {chunk.index} failed on worker "
                    f"{self.name!r}: {payload}"
                )
            results, dropped = payload
            self.corrupt_dropped += dropped
            return results


def local_shard_workers(
    count: int,
    *,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
    cache_maxsize: int = 200_000,
) -> List[LocalShardWorker]:
    """``count`` local workers, optionally sharing one persistent
    ``cache_dir`` (the shared-filesystem warm-cache deployment)."""
    return [
        LocalShardWorker(
            name=str(i),
            use_cache=use_cache,
            cache_dir=cache_dir,
            cache_maxsize=cache_maxsize,
        )
        for i in range(count)
    ]


# ----------------------------------------------------------------------
# Remote workers (repro shard-worker endpoints)
# ----------------------------------------------------------------------
class RemoteShardWorker:
    """One shard behind a ``repro shard-worker`` HTTP endpoint.

    Chunks are POSTed to ``/shard/run`` through the
    :class:`~repro.service.http.ServiceClient`, whose own
    :class:`~repro.runner.retry.RetryPolicy` absorbs transient
    transport blips; once the client gives up, the failure surfaces as
    :class:`WorkerUnavailable` and the *coordinator's* policy decides
    whether the chunk gets another attempt (possibly elsewhere).
    """

    def __init__(
        self,
        url: str,
        *,
        timeout: float = 600.0,
        retry: Optional[RetryPolicy] = None,
        name: Optional[str] = None,
    ):
        # Deferred import: repro.service imports repro.runner at module
        # load; importing it here keeps the packages cycle-free.
        from ..service.http import ServiceClient

        self.client = ServiceClient(url, timeout=timeout, retry=retry)
        self.name = name if name is not None else url

    def run_chunk(self, chunk: ShardChunk) -> List[JobResult]:
        from ..service.http import ServiceError

        try:
            return self.client.run_jobs(chunk.jobs)
        except ServiceError as exc:
            if 400 <= exc.status < 500:
                # The endpoint rejected the chunk as malformed: a
                # coordinator bug, not a worker death — don't retry.
                raise RuntimeError(
                    f"shard worker {self.name!r} rejected chunk "
                    f"{chunk.index}: {exc}"
                ) from exc
            raise WorkerUnavailable(
                f"shard worker {self.name!r} unavailable for chunk "
                f"{chunk.index}: {exc}"
            ) from exc

    def close(self) -> None:
        """Remote workers hold no local resources."""


# ----------------------------------------------------------------------
# The coordinator
# ----------------------------------------------------------------------
class ShardCoordinator:
    """Partition a job list over shard workers and merge the results.

    Parameters
    ----------
    workers:
        The shard workers (any mix of :class:`LocalShardWorker` and
        :class:`RemoteShardWorker`, or anything implementing
        ``run_chunk``/``close`` with a ``name``).
    chunk_size:
        Jobs per chunk; ``None`` auto-sizes to about four chunks per
        worker so stealing and retries have useful granularity.
    retry:
        The per-chunk retry budget and backoff applied when a worker
        dies mid-chunk.
    log:
        A :class:`~repro.runner.progress.ShardLog`; every progress line
        is emitted atomically with a shard tag (``repro shard -v``).
    own_workers:
        When true (the :func:`run_sharded` path), :meth:`run` closes
        the workers on exit.
    """

    def __init__(
        self,
        workers: Sequence[Any],
        *,
        chunk_size: Optional[int] = None,
        retry: RetryPolicy = RetryPolicy(),
        log: ShardLog = NULL_LOG,
        own_workers: bool = False,
    ):
        workers = list(workers)
        if not workers:
            raise ValueError("ShardCoordinator needs at least one worker")
        names = [worker.name for worker in workers]
        if len(set(names)) != len(names):
            raise ValueError(f"shard worker names must be unique, got {names}")
        self.workers = workers
        self.chunk_size = chunk_size
        self.retry = retry
        self.log = log
        self.own_workers = own_workers
        #: Scheduler counters of the last run (steals, retries).
        self.last_stats: Dict[str, int] = {}

    def _auto_chunk_size(self, job_count: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, -(-job_count // (len(self.workers) * 4)))

    def run(self, jobs: Sequence[AnalysisJob]) -> BatchResult:
        """Execute ``jobs`` across the shards; the merged
        :class:`BatchResult`'s deterministic export is byte-identical
        to ``BatchRunner(workers=1).run(jobs)``."""
        jobs = list(jobs)
        start = time.perf_counter()
        try:
            results = self._run_chunks(jobs)
        finally:
            if self.own_workers:
                self.close()
        totals: Dict[str, Dict[str, int]] = {}
        for result in results:
            merge_stats(totals, result.cache)
        return BatchResult(
            jobs=results,
            workers=len(self.workers),
            wall_time=time.perf_counter() - start,
            cache_stats=totals,
        )

    def close(self) -> None:
        for worker in self.workers:
            worker.close()

    def _run_chunks(self, jobs: List[AnalysisJob]) -> List[JobResult]:
        if not jobs:
            return []
        chunks = make_chunks(jobs, self._auto_chunk_size(len(jobs)))
        coordinator = self.log.tag("coord")
        coordinator.line(
            f"dispatching {len(jobs)} jobs as {len(chunks)} chunks "
            f"over {len(self.workers)} workers"
        )
        state = _ShardState(chunks, self.retry)
        threads = [
            threading.Thread(
                target=self._drive,
                args=(worker, state),
                name=f"repro-shard-dispatch-{worker.name}",
                daemon=True,
            )
            for worker in self.workers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        self.last_stats = state.counters()
        self.last_stats["respawns"] = sum(
            getattr(worker, "respawns", 0) for worker in self.workers
        )
        self.last_stats["corrupt_dropped"] = sum(
            getattr(worker, "corrupt_dropped", 0) for worker in self.workers
        )
        if state.failure is not None:
            raise state.failure
        coordinator.line(
            f"merged {len(chunks)} chunks "
            f"(retries={self.last_stats['retries']}, "
            f"steals={self.last_stats['steals']})"
        )
        # The keyed union: chunk results land at their global offsets,
        # reproducing submission order exactly.
        ordered: List[Optional[JobResult]] = [None] * len(jobs)
        for chunk in chunks:
            chunk_results = state.results[chunk.index]
            for offset, result in enumerate(chunk_results):
                ordered[chunk.start + offset] = result
        assert all(result is not None for result in ordered)
        return ordered  # type: ignore[return-value]

    def _drive(self, worker: Any, state: "_ShardState") -> None:
        """One worker's dispatch loop: acquire, run, release."""
        tag = self.log.tag(worker.name)
        while True:
            kind, payload = state.acquire(worker.name)
            if kind == "done":
                break
            if kind == "wait":
                time.sleep(min(payload, 0.05))
                continue
            chunk, stolen = payload
            note = " (stolen)" if stolen else ""
            tag.line(f"chunk {chunk.index} start: {len(chunk)} jobs{note}")
            started = time.perf_counter()
            try:
                results = worker.run_chunk(chunk)
            except WorkerUnavailable as exc:
                tag.line(f"chunk {chunk.index} lost: {exc}")
                state.release_failure(chunk, worker.name, exc, retryable=True)
            except Exception as exc:
                tag.line(f"chunk {chunk.index} failed: {exc}")
                state.release_failure(chunk, worker.name, exc, retryable=False)
            else:
                kept = state.release_success(chunk, worker.name, results)
                elapsed = time.perf_counter() - started
                outcome = "done" if kept else "done (duplicate, discarded)"
                tag.line(f"chunk {chunk.index} {outcome} in {elapsed:.3f}s")


def run_sharded(
    jobs: Sequence[AnalysisJob],
    *,
    shards: int = 0,
    worker_urls: Sequence[str] = (),
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
    cache_maxsize: int = 200_000,
    chunk_size: Optional[int] = None,
    retry: RetryPolicy = RetryPolicy(),
    timeout: float = 600.0,
    log: ShardLog = NULL_LOG,
) -> BatchResult:
    """Convenience entrypoint: build ``shards`` local workers plus one
    remote worker per URL, run ``jobs`` through a
    :class:`ShardCoordinator`, and tear the workers down."""
    workers: List[Any] = local_shard_workers(
        shards,
        use_cache=use_cache,
        cache_dir=cache_dir,
        cache_maxsize=cache_maxsize,
    )
    workers.extend(
        RemoteShardWorker(url, timeout=timeout, retry=retry) for url in worker_urls
    )
    coordinator = ShardCoordinator(
        workers, chunk_size=chunk_size, retry=retry, log=log, own_workers=True
    )
    return coordinator.run(jobs)
