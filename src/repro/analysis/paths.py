"""Paths: end-to-end analysis across sequences of chains (footnote 1).

The paper's system model requires disjoint chains and notes (footnote 1)
that fork/join systems "can additionally define paths, i.e. sequences of
distinct task chains" — declared out of scope there.  This module
implements that extension on a single processor:

* a **path** is an ordered sequence of distinct chains of one system,
  where completing an instance of chain *i* triggers chain *i+1*;
* the activation model of each downstream chain is the *output* model
  of its predecessor (jitter propagation, shared with the distributed
  layer), iterated to a global fixed point;
* the path latency is the sum of the converged chain WCLs, and the
  path deadline miss model is the union bound over per-chain budget
  splits — both exactly as in :mod:`repro.distributed`.

Forks are supported implicitly: two paths may share a prefix chain
(each path is analyzed separately); joins require the joined chain to
appear in both paths.  Cycles are rejected by the distinctness check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..arrivals import EventModel
from ..distributed.propagation import propagate
from ..model import System, TaskChain
from .exceptions import AnalysisError, BusyWindowDivergence, NotAnalyzable
from .latency import LatencyResult, analyze_latency
from .twca import analyze_twca

#: Cap on the path fixed-point iteration.
MAX_PATH_ITERATIONS = 64


@dataclass(frozen=True)
class Path:
    """An ordered sequence of distinct chain names plus an end-to-end
    relative deadline."""

    name: str
    chain_names: Tuple[str, ...]
    deadline: float

    def __init__(self, name: str, chain_names: Sequence[str], deadline: float):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "chain_names", tuple(chain_names))
        object.__setattr__(self, "deadline", deadline)
        if not self.chain_names:
            raise ValueError(f"path {name}: needs at least one chain")
        if len(set(self.chain_names)) != len(self.chain_names):
            raise ValueError(f"path {name}: chains must be distinct (no cycles)")
        if deadline <= 0:
            raise ValueError(f"path {name}: deadline must be positive")


@dataclass
class PathStage:
    """One chain of the path after convergence."""

    chain_name: str
    input_model: EventModel
    latency: LatencyResult
    best_case: float

    @property
    def wcl(self) -> float:
        return self.latency.wcl


@dataclass
class PathResult:
    """Converged end-to-end view of a path."""

    path: Path
    stages: List[PathStage]
    system: System  # the system with converged activation models
    iterations: int

    @property
    def wcl(self) -> float:
        """End-to-end worst-case latency of the path."""
        return sum(stage.wcl for stage in self.stages)

    @property
    def meets_deadline(self) -> bool:
        return self.wcl <= self.path.deadline

    def stage_budgets(self) -> List[float]:
        """Per-chain deadline budgets summing to the path deadline,
        proportional to each stage's best-case demand."""
        costs = [max(stage.best_case, 1e-12) for stage in self.stages]
        total = sum(costs)
        slack = self.path.deadline - total
        if slack < 0:
            return [self.path.deadline * c / total for c in costs]
        return [c + slack * c / total for c in costs]


def _rebuild(system: System, activations: Dict[str, EventModel]) -> System:
    chains = []
    for chain in system.chains:
        if chain.name in activations:
            chains.append(chain.with_activation(activations[chain.name]))
        else:
            chains.append(chain)
    return System(chains, name=system.name, allow_shared_priorities=True)


def analyze_path(
    system: System, path: Path, *, max_iterations: int = MAX_PATH_ITERATIONS
) -> PathResult:
    """Fixed-point analysis of a path within ``system``.

    The chains named by the path must exist; downstream chains receive
    the propagated output models of their predecessors (their original
    activation models are treated as placeholders, as is usual in
    fork/join specifications).

    Raises
    ------
    BusyWindowDivergence
        If any busy window diverges or the loop does not converge.
    """
    for name in path.chain_names:
        if name not in system:
            raise NotAnalyzable(f"path {path.name}: no chain {name!r}")
        if system[name].overload:
            raise NotAnalyzable(
                f"path {path.name}: chain {name!r} is an overload chain"
            )

    activations: Dict[str, EventModel] = {}
    source = system[path.chain_names[0]].activation
    for name in path.chain_names:
        activations[name] = source  # optimistic start: undistorted

    current = _rebuild(system, activations)
    previous_wcls: Optional[List[float]] = None
    for iteration in range(1, max_iterations + 1):
        wcls: List[float] = []
        latencies: List[LatencyResult] = []
        for name in path.chain_names:
            result = analyze_latency(current, current[name])
            wcls.append(result.wcl)
            latencies.append(result)
        # Propagate downstream.
        model = source
        new_activations: Dict[str, EventModel] = {}
        for index, name in enumerate(path.chain_names):
            new_activations[name] = model
            chain = current[name]
            bcl = sum(t.bcet for t in chain.tasks)
            model = propagate(
                model, wcls[index], bcl, last_task_bcet=chain.tail.bcet
            )
        if previous_wcls == wcls and all(
            new_activations[n] == activations[n] for n in path.chain_names
        ):
            break
        activations = new_activations
        current = _rebuild(system, activations)
        previous_wcls = wcls
    else:
        raise BusyWindowDivergence(
            path.name, max_iterations, "path event-model iteration did not converge"
        )

    stages = []
    for index, name in enumerate(path.chain_names):
        chain = current[name]
        stages.append(
            PathStage(
                chain_name=name,
                input_model=activations[name],
                latency=latencies[index],
                best_case=sum(t.bcet for t in chain.tasks),
            )
        )
    return PathResult(path=path, stages=stages, system=current, iterations=iteration)


def path_dmm(
    system: System,
    path: Path,
    k: int,
    *,
    backend: str = "branch_bound",
    analysis: Optional[PathResult] = None,
) -> int:
    """End-to-end deadline miss bound for a path (union bound over the
    per-chain budget split), clamped to ``k``."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if analysis is None:
        analysis = analyze_path(system, path)
    if analysis.meets_deadline:
        return 0
    budgets = analysis.stage_budgets()
    total = 0
    for stage, budget in zip(analysis.stages, budgets):
        base = analysis.system
        chains = []
        for chain in base.chains:
            if chain.name == stage.chain_name:
                chains.append(
                    TaskChain(
                        chain.name,
                        chain.tasks,
                        chain.activation,
                        budget,
                        chain.kind,
                        chain.overload,
                    )
                )
            else:
                chains.append(chain)
        budgeted = System(chains, name=base.name, allow_shared_priorities=True)
        try:
            result = analyze_twca(
                budgeted, budgeted[stage.chain_name], backend=backend
            )
        except AnalysisError:
            return k
        total += result.dmm(k)
        if total >= k:
            return k
    return min(total, k)
