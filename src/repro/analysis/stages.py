"""Per-stage latency bounds: when does task *i* of a chain finish?

The paper bounds end-to-end latencies (activation of the header to the
finish of the tail).  Practitioners also need intermediate deadlines —
"the actuator command (task 3 of 5) must be out within X".  This module
bounds the time from a chain activation to the completion of its *i*-th
task by the busy-window argument with the base demand

    ``B_stage(q) = (q - 1) * C_chain + C_prefix(i) + interference``

i.e. the q-th instance in the window pays the full chains of its
predecessors plus its own prefix.  For synchronous chains the
predecessor term is exact (instances serialize); for asynchronous
chains it is conservative (earlier instances' suffixes may actually run
later).  Interference terms and the window-closure rule are shared with
Theorem 1/2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..model import System, TaskChain
from .busy_window import busy_time
from .latency import MAX_Q, analyze_latency


@dataclass(frozen=True)
class StageLatencyResult:
    """Latency bounds from activation to each task's completion."""

    chain_name: str
    #: ``bounds[i]`` bounds the latency to the finish of task ``i``.
    bounds: Tuple[float, ...]
    max_queue: int

    @property
    def wcl(self) -> float:
        """The end-to-end bound (last stage) — equals Theorem 2's WCL."""
        return self.bounds[-1]

    def stage(self, index: int) -> float:
        return self.bounds[index]


def analyze_stage_latencies(
    system: System,
    target: TaskChain,
    *,
    include_overload: bool = True,
    max_q: int = MAX_Q,
) -> StageLatencyResult:
    """Bound the latency to every stage of ``target``.

    The busy-window depth ``K_b`` is taken from the end-to-end analysis
    (the window closes based on complete instances); each stage bound
    maximizes ``B_stage(q) - delta_minus(q)`` over ``q in [1, K_b]``.
    """
    end_to_end = analyze_latency(
        system, target, include_overload=include_overload, max_q=max_q
    )
    k_b = end_to_end.max_queue
    chain_cost = target.total_wcet
    bounds: List[float] = []
    prefix_cost = 0.0
    for index in range(len(target.tasks)):
        prefix_cost += target.tasks[index].wcet
        worst = 0.0
        for q in range(1, k_b + 1):
            base = (q - 1) * chain_cost + prefix_cost
            breakdown = busy_time(
                system,
                target,
                q,
                include_overload=include_overload,
                base_demand=base,
            )
            latency = breakdown.total - target.activation.delta_minus(q)
            worst = max(worst, latency)
        bounds.append(worst)
    return StageLatencyResult(
        chain_name=target.name, bounds=tuple(bounds), max_queue=k_b
    )
