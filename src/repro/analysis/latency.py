"""Worst-case latency of a chain (Theorem 2) and per-window miss count
(Lemma 3).

``K_b`` is the largest number of activations a single sigma_b-busy-window
must accommodate; the worst-case latency maximizes ``B_b(q) -
delta_minus(q)`` over ``q in [1, K_b]`` — the classic multiple-event
busy-window argument of response-time analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..model import System, TaskChain
from .busy_window import BusyTimeBreakdown, _busy_times_block
from .exceptions import BusyWindowDivergence

#: Safety cap on the busy-window queue-depth search.
MAX_Q = 65_536

#: Largest q-block advanced per batched Kleene call of the queue scan.
#: Blocks grow 1, 1, 2, 4, ... so short busy windows (the common case)
#: compute nothing beyond their closure point, while long windows —
#: where the per-q fixed points dominate — advance a whole block per
#: interference-structure evaluation.
MAX_BLOCK = 64


@dataclass(frozen=True)
class LatencyResult:
    """Result of the Theorem 2 analysis for one chain.

    Attributes
    ----------
    chain_name:
        The analyzed chain.
    busy_times:
        ``busy_times[q - 1]`` is the :class:`BusyTimeBreakdown` for ``q``
        events, for ``q in [1, K_b]``.
    latencies:
        ``latencies[q - 1] == B_b(q) - delta_minus(q)``.
    max_queue:
        ``K_b``: maximum activations per busy window.
    wcl:
        ``WCL_b``: the worst-case end-to-end latency.
    critical_q:
        The ``q`` attaining the worst-case latency.
    include_overload:
        Whether overload chains were part of the interference (False for
        the *typical* analysis of Experiment 1's second run).
    """

    chain_name: str
    busy_times: Tuple[BusyTimeBreakdown, ...]
    latencies: Tuple[float, ...]
    max_queue: int
    wcl: float
    critical_q: int
    include_overload: bool = True

    def busy_time(self, q: int) -> float:
        """``B_b(q)`` for ``q in [1, K_b]``."""
        if not 1 <= q <= self.max_queue:
            raise IndexError(f"q={q} outside [1, {self.max_queue}]")
        return self.busy_times[q - 1].total

    def deadline_miss_count(self, deadline: float) -> int:
        """``N_b`` (Lemma 3): how many of the ``K_b`` positions in a busy
        window can exceed ``deadline``."""
        return sum(1 for latency in self.latencies if latency > deadline)

    def meets(self, deadline: float) -> bool:
        """True iff the worst-case latency meets ``deadline``."""
        return self.wcl <= deadline


def analyze_latency(
    system: System,
    target: TaskChain,
    *,
    include_overload: bool = True,
    max_q: int = MAX_Q,
) -> LatencyResult:
    """Theorem 2: compute ``K_b`` and the worst-case latency of
    ``target`` within ``system``.

    ``K_b`` is the smallest ``q >= 1`` with
    ``B_b(q) <= delta_minus(q + 1)`` — once the busy time for ``q``
    events finishes before the earliest possible (q+1)-th arrival, the
    busy window closes.

    ``include_overload=False`` abstracts all overload chains away,
    producing the *typical* worst-case latency (the second analysis of
    Experiment 1).

    Raises
    ------
    BusyWindowDivergence
        If the busy window never closes (overload at or above capacity).
    """
    busy: List[BusyTimeBreakdown] = []
    latencies: List[float] = []
    q = 0
    closed = False
    block = 1
    while not closed:
        if q >= max_q:
            raise BusyWindowDivergence(
                target.name,
                q + 1,
                f"no busy-window closure within {max_q} activations",
            )
        qs = range(q + 1, min(q + block, max_q) + 1)
        if len(busy) >= 1:
            block = min(block * 2, MAX_BLOCK)
        # Warm-start the block from the previous fixed point: B(q-1)
        # lower-bounds B(q) (the Theorem 1 sum is pointwise monotone in
        # q), so the results are bit-identical and only the iteration
        # counts shrink.  The whole block advances as one masked Kleene
        # iteration; a q diverging beyond the closure point is ignored,
        # exactly as the scalar scan would never have evaluated it.
        outcomes = _busy_times_block(
            system,
            target,
            qs,
            include_overload=include_overload,
            seeds={qs[0]: busy[-1].total} if busy else None,
        )
        for q in qs:
            outcome = outcomes[q]
            if isinstance(outcome, BusyWindowDivergence):
                raise outcome
            busy.append(outcome)
            latencies.append(outcome.total - target.activation.delta_minus(q))
            if outcome.total <= target.activation.delta_minus(q + 1):
                closed = True
                break

    wcl = max(latencies)
    critical_q = latencies.index(wcl) + 1
    return LatencyResult(
        chain_name=target.name,
        busy_times=tuple(busy),
        latencies=tuple(latencies),
        max_queue=q,
        wcl=wcl,
        critical_q=critical_q,
        include_overload=include_overload,
    )
