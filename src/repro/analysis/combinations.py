"""Combinations of overload active segments (Defs. 9 and 10).

A *combination* is a set of active segments of the overload chains with
the structural restriction that active segments of the same chain must
belong to the same segment — Lemma 1 and 2 guarantee exactly those sets
can hit one busy window of the analyzed chain together.

Combination schedulability is decided by the linear criterion Eq. (5),
which reduces to a cost threshold: the combination is unschedulable iff
its summed WCET exceeds the minimum slack
``S* = min_q (delta_minus(q) + D - L(q))``.

The combination set is exponential in the number of overload chains, but
both the Eq. (5) threshold and the exact Def. 10 re-check depend only on
a combination's *cost signature* — the per-chain summed WCET of its
members — and both are **monotone** in that signature: adding cost never
turns an unschedulable combination schedulable.  This module therefore
offers, besides the classic materializing :func:`enumerate_combinations`:

* :func:`iter_combinations` — the same set, streamed lazily;
* :func:`iter_combinations_by_cost` — streamed best-first (cheapest
  combination first) through a heap over the per-chain choice lattice;
* :func:`count_combinations` — the set size in closed form;
* :func:`search_combinations` — a dominance-pruned search that counts
  the unschedulable combinations and collects the inclusion-minimal ones
  *without* visiting every member: per chain the choices are sorted by
  cost and the schedulability frontier is located by binary search,
  while whole cones of the lattice are settled by evaluating their
  cheapest and costliest signatures only.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..model import System, TaskChain
from .segments import ActiveSegment, active_segments

#: Per-chain summed WCET of a combination, ``((chain_name, cost), ...)``
#: sorted by chain name with zero-cost chains dropped.  Both
#: schedulability criteria are pure monotone functions of this value.
CostSignature = Tuple[Tuple[str, float], ...]

#: One per-chain choice: a (possibly empty) tuple of active segments of
#: a single segment of that chain.
Choice = Tuple[ActiveSegment, ...]


@dataclass(frozen=True)
class Combination:
    """A set of overload active segments hitting one busy window."""

    segments: Tuple[ActiveSegment, ...]

    @cached_property
    def cost(self) -> float:
        """Summed WCET of the member active segments (the r-term of
        Eq. (3)/(5))."""
        return math.fsum(seg.wcet for seg in self.segments)

    @cached_property
    def keys(self) -> Tuple[Tuple[str, int], ...]:
        """Identity keys of the member segments (chain name, start)."""
        return tuple(seg.key for seg in self.segments)

    @cached_property
    def key_set(self) -> frozenset:
        """The member keys as a frozenset, computed once per instance
        (membership tests drive the packing-ILP row construction)."""
        return frozenset(self.keys)

    @cached_property
    def signature(self) -> CostSignature:
        """Per-chain summed WCET, the quantity schedulability actually
        depends on.  ``math.fsum`` makes the value independent of member
        order, so signatures are canonical cache keys."""
        per_chain: Dict[str, List[float]] = {}
        for seg in self.segments:
            per_chain.setdefault(seg.chain_name, []).append(seg.wcet)
        return tuple(
            (name, cost)
            for name in sorted(per_chain)
            if (cost := math.fsum(per_chain[name])) > 0
        )

    def uses(self, segment: ActiveSegment) -> bool:
        """True iff the combination contains ``segment``."""
        return segment.key in self.key_set

    def __len__(self) -> int:
        return len(self.segments)

    def __str__(self) -> str:
        inner = ", ".join(str(s) for s in self.segments)
        return f"{{{inner}}}"


def overload_active_segments(
    system: System, target: TaskChain
) -> Dict[str, List[ActiveSegment]]:
    """Active segments of every overload chain w.r.t. ``target``,
    keyed by chain name.

    Overload chains that arbitrarily interfere with ``target`` have no
    segment decomposition in the Def. 3 sense; for them the *whole chain*
    acts as a single segment (the case study: sigma_a and sigma_b each
    contribute one segment ``(tau^1 ... tau^n)``), which is then split
    into active segments by the Def. 8 rule.
    """
    from .interference import is_deferred
    from .memo import active_cache, content_key

    cache = active_cache()
    cache_key = None
    if cache is not None:
        digest = content_key(system)
        if digest is not None:
            cache_key = (digest, target.name)
            hit = cache.lookup("segments", cache_key)
            if hit is not None:
                return {name: list(segs) for name, segs in hit.items()}

    result: Dict[str, List[ActiveSegment]] = {}
    for chain in system.overload_chains:
        if chain.name == target.name:
            continue
        if is_deferred(chain, target):
            result[chain.name] = active_segments(chain, target)
        else:
            # Whole chain is one segment; partition it by the tail rule.
            tail_priority = target.tail.priority
            segs: List[ActiveSegment] = []
            current: List = []
            current_start = 0
            for index, task in enumerate(chain.tasks):
                if not current:
                    current = [task]
                    current_start = index
                elif task.priority > tail_priority:
                    current.append(task)
                else:
                    segs.append(
                        ActiveSegment(chain.name, 0, current_start, tuple(current))
                    )
                    current = [task]
                    current_start = index
            if current:
                segs.append(ActiveSegment(chain.name, 0, current_start, tuple(current)))
            result[chain.name] = segs
    if cache_key is not None:
        cache.store(
            "segments",
            cache_key,
            {name: list(segs) for name, segs in result.items()},
        )
    return result


def _choice_cost(choice: Choice) -> float:
    return math.fsum(seg.wcet for seg in choice)


def per_chain_choices(
    segments_by_chain: Dict[str, List[ActiveSegment]],
) -> List[Tuple[str, List[Choice]]]:
    """The Def. 9 choice list of every overload chain, in chain-name
    order.

    Per chain the choices are: nothing (the leading empty tuple), or any
    non-empty subset of the active segments of **one** segment of that
    chain.  The cross product of the per-chain choices, minus the
    all-empty assignment, is exactly the combination set.
    """
    named: List[Tuple[str, List[Choice]]] = []
    for chain_name in sorted(segments_by_chain):
        segs = segments_by_chain[chain_name]
        by_segment: Dict[int, List[ActiveSegment]] = {}
        for seg in segs:
            by_segment.setdefault(seg.segment_index, []).append(seg)
        choices: List[Choice] = [()]
        for seg_index in sorted(by_segment):
            group = by_segment[seg_index]
            for size in range(1, len(group) + 1):
                choices.extend(itertools.combinations(group, size))
        named.append((chain_name, choices))
    return named


def count_combinations(segments_by_chain: Dict[str, List[ActiveSegment]]) -> int:
    """Number of Def. 9 combinations, in closed form (the per-chain
    choice-count product minus the excluded all-empty assignment)."""
    product = 1
    for _, choices in per_chain_choices(segments_by_chain):
        product *= len(choices)
    return product - 1


def iter_combinations(
    segments_by_chain: Dict[str, List[ActiveSegment]],
) -> Iterator[Combination]:
    """All non-empty combinations per Def. 9, streamed lazily in the
    classic product order (the order :func:`enumerate_combinations`
    always used)."""
    choice_lists = [choices for _, choices in per_chain_choices(segments_by_chain)]
    for assignment in itertools.product(*choice_lists):
        members = tuple(itertools.chain.from_iterable(assignment))
        if members:
            yield Combination(members)


def iter_combinations_by_cost(
    segments_by_chain: Dict[str, List[ActiveSegment]],
) -> Iterator[Combination]:
    """All non-empty combinations, streamed best-first: non-decreasing
    total cost, ties broken deterministically.

    Works on the choice lattice: per chain the choices are sorted by
    cost, and a heap walks the product in cost order, generating each
    assignment exactly once (a vector's unique parent decrements its
    rightmost non-zero coordinate).  Memory is bounded by the frontier,
    never the full combination count.
    """
    chains = per_chain_choices(segments_by_chain)
    if not chains:
        return
    sorted_choices: List[List[Choice]] = [
        sorted(choices, key=lambda c: (_choice_cost(c), tuple(s.key for s in c)))
        for _, choices in chains
    ]
    costs = [[_choice_cost(c) for c in choices] for choices in sorted_choices]
    d = len(sorted_choices)
    start = (0,) * d
    heap: List[Tuple[float, Tuple[int, ...]]] = [(0.0, start)]
    while heap:
        cost, indices = heapq.heappop(heap)
        members = tuple(
            itertools.chain.from_iterable(
                sorted_choices[i][indices[i]] for i in range(d)
            )
        )
        if members:
            yield Combination(members)
        rightmost = 0
        for position in range(d - 1, -1, -1):
            if indices[position]:
                rightmost = position
                break
        for position in range(rightmost, d):
            bumped = indices[position] + 1
            if bumped >= len(sorted_choices[position]):
                continue
            child = indices[:position] + (bumped,) + indices[position + 1 :]
            child_cost = cost - costs[position][bumped - 1] + costs[position][bumped]
            heapq.heappush(heap, (child_cost, child))


def enumerate_combinations(
    segments_by_chain: Dict[str, List[ActiveSegment]],
    max_count: int = 100_000,
) -> List[Combination]:
    """All non-empty combinations per Def. 9, materialized.

    Raises ``ValueError`` when the combination count would exceed
    ``max_count`` (use :func:`search_combinations` / the streaming
    iterators for such systems).
    """
    expected = 1
    for _, choices in per_chain_choices(segments_by_chain):
        expected *= len(choices)
        if expected > max_count:
            raise ValueError(
                f"combination count exceeds {max_count}; "
                "enumerate_combinations is not applicable"
            )
    return list(iter_combinations(segments_by_chain))


def split_by_schedulability(
    combinations: Iterable[Combination], min_slack: float
) -> Tuple[List[Combination], List[Combination]]:
    """Partition combinations into (schedulable, unschedulable) using the
    Eq. (5) threshold: unschedulable iff ``cost > min_slack``."""
    schedulable: List[Combination] = []
    unschedulable: List[Combination] = []
    for combo in combinations:
        if combo.cost > min_slack:
            unschedulable.append(combo)
        else:
            schedulable.append(combo)
    return schedulable, unschedulable


@dataclass
class CombinationSearchResult:
    """Outcome of :func:`search_combinations`.

    ``total`` and ``unschedulable`` are exact set sizes; ``minimal``
    holds the inclusion-minimal unschedulable combinations (the only
    ones the Theorem 3 packing needs).  ``checks`` counts distinct
    signature evaluations and ``nodes`` visited lattice nodes — the
    observability hooks the hot-path benchmark reports.
    """

    total: int
    unschedulable: int
    minimal: List[Combination]
    checks: int = 0
    nodes: int = 0


#: Sentinel for generators the batched driver has not started yet.
_START = object()


def _drive_batched(generators, evaluate_block, memo) -> None:
    """Run signature-querying generators in lock-step rounds.

    Each generator yields cost signatures and receives their boolean
    verdicts back; requests already in ``memo`` are answered
    immediately, so a generator only parks when it hits a genuinely
    undecided signature.  Every round gathers one such blocked
    signature per parked generator, deduplicates them, and resolves the
    whole block through one ``evaluate_block`` call (which must fill
    ``memo``).  A finished generator may return (via its
    ``StopIteration`` value) a list of new generators to schedule —
    that is how lattice nodes spawn their children.

    Because every generator's query sequence is fully determined by the
    verdicts it receives — which are deterministic — batching changes
    neither the set of signatures evaluated nor any generator's
    behaviour, only how many evaluator calls serve them.
    """
    active = [(gen, _START) for gen in generators]
    while active:
        waiting: List[Tuple[object, CostSignature]] = []
        spawned: List[object] = []
        for gen, send in active:
            try:
                request = next(gen) if send is _START else gen.send(send)
                while request in memo:
                    request = gen.send(memo[request])
            except StopIteration as stop:
                if stop.value:
                    spawned.extend(stop.value)
                continue
            waiting.append((gen, request))
        if waiting:
            block: List[CostSignature] = []
            seen = set()
            for _, signature in waiting:
                if signature not in seen:
                    seen.add(signature)
                    block.append(signature)
            evaluate_block(block)
        active = [(gen, memo[signature]) for gen, signature in waiting]
        active.extend((gen, _START) for gen in spawned)


def search_combinations(
    segments_by_chain: Dict[str, List[ActiveSegment]],
    flagged: Callable[[CostSignature], bool],
    *,
    batch: Optional[bool] = None,
) -> CombinationSearchResult:
    """Count the unschedulable combinations and collect the
    inclusion-minimal ones under a **monotone** signature predicate.

    ``flagged(signature)`` must be monotone: raising any chain's cost
    (componentwise) never turns ``True`` into ``False``.  Both paper
    criteria — the Eq. (5) threshold and the exact Def. 10 fixed-point
    re-check — have this property, because every interference term is
    non-decreasing in the injected overload cost.

    The search walks the per-chain choice lattice in chain-name order.
    At every node it evaluates the subtree's cheapest signature (all
    remaining chains absent) and costliest signature (all remaining
    chains at maximum cost): a flagged cheapest signature settles the
    whole cone as unschedulable (and contributes at most one minimal
    candidate — the prefix itself); an unflagged costliest signature
    prunes the cone entirely.  In between, the chain's distinct choice
    costs are scanned by binary search for the two frontier indices, so
    only frontier-crossing cones recurse.  The counts are exact: the
    three cases partition every cone.

    ``batch`` selects the driver.  The default (``None``) batches when
    ``flagged`` exposes a ``many(signatures)`` hook (the multi-q TWCA
    verdict does): the lattice walk then runs as a wavefront of
    suspended node visits whose pending signature stream is decided in
    deduplicated blocks — one 2-D (signature x q) fixed-point sweep per
    round instead of one evaluation per query.  ``batch=False`` forces
    the historic depth-first recursion (the differential reference);
    ``batch=True`` forces the wavefront even for plain callables (each
    block then falls back to mapping ``flagged``).  Both drivers visit
    the same nodes and evaluate the same signature set, so counts,
    minimal representatives, ``checks`` and ``nodes`` are identical.
    """
    chains = per_chain_choices(segments_by_chain)
    names = [name for name, _ in chains]
    d = len(chains)
    total = 1
    for _, choices in chains:
        total *= len(choices)
    total -= 1
    if total <= 0:
        return CombinationSearchResult(total=max(total, 0), unschedulable=0, minimal=[])

    flagged_many = getattr(flagged, "many", None)
    if batch is None:
        batch = flagged_many is not None

    memo: Dict[CostSignature, bool] = {}
    checks = 0

    def evaluate_block(block: Sequence[CostSignature]) -> None:
        nonlocal checks
        results = (
            flagged_many(block)
            if flagged_many is not None
            else [flagged(signature) for signature in block]
        )
        checks += len(block)
        for signature, value in zip(block, results):
            memo[signature] = bool(value)

    def verdict(signature: CostSignature) -> bool:
        nonlocal checks
        value = memo.get(signature)
        if value is None:
            value = bool(flagged(signature))
            memo[signature] = value
            checks += 1
        return value

    if batch:
        evaluate_block([()])
        root_flagged = memo[()]
    else:
        root_flagged = verdict(())
    if root_flagged:
        # Even the empty signature is flagged: every non-empty
        # combination is unschedulable, and the minimal ones are exactly
        # the singletons (no non-empty strict subsets exist).
        minimal = [
            Combination(choice)
            for _, choices in chains
            for choice in choices
            if len(choice) == 1
        ]
        minimal.sort(key=lambda c: tuple(sorted(c.keys)))
        return CombinationSearchResult(
            total=total, unschedulable=total, minimal=minimal, checks=checks, nodes=1
        )

    grouped: List[List[Tuple[float, List[Choice]]]] = []
    for _, choices in chains:
        buckets: Dict[float, List[Choice]] = {}
        for choice in choices:
            buckets.setdefault(_choice_cost(choice), []).append(choice)
        grouped.append(sorted(buckets.items()))
    max_costs = [entries[-1][0] for entries in grouped]
    suffix = [1] * (d + 1)
    for i in range(d - 1, -1, -1):
        suffix[i] = suffix[i + 1] * len(chains[i][1])

    count = 0
    nodes = 0
    candidates: List[Combination] = []

    def emit(parts: Sequence[Choice]) -> None:
        members = tuple(itertools.chain.from_iterable(parts))
        candidates.append(Combination(members))

    def frontier(
        entries: List[Tuple[float, List[Choice]]],
        predicate: Callable[[float], bool],
    ) -> int:
        """First index whose cost the monotone ``predicate`` flags."""
        lo, hi = 0, len(entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if predicate(entries[mid][0]):
                hi = mid
            else:
                lo = mid + 1
        return lo

    def visit(i: int, parts: List[Choice], signature: CostSignature) -> None:
        nonlocal count, nodes
        nodes += 1
        if verdict(signature):
            # The prefix alone (all remaining chains absent) is already
            # unschedulable, so every completion is too; only the prefix
            # itself can be inclusion-minimal here.
            count += suffix[i]
            emit(parts)
            return
        if i == d:
            return  # complete and schedulable
        rest_max = tuple(
            (names[j], max_costs[j]) for j in range(i + 1, d) if max_costs[j] > 0
        )

        def with_cost(cost: float, extra: CostSignature) -> CostSignature:
            if cost > 0:
                return signature + ((names[i], cost),) + extra
            return signature + extra

        if not verdict(with_cost(max_costs[i], rest_max)):
            return  # costliest completion still schedulable: empty cone

        entries = grouped[i]
        t_all = frontier(entries, lambda c: verdict(with_cost(c, ())))
        t_any = frontier(entries, lambda c: verdict(with_cost(c, rest_max)))
        for cost, bucket in entries[t_all:]:
            # Cheapest completion flagged: the whole cone above each of
            # these choices is unschedulable.
            count += len(bucket) * suffix[i + 1]
            for choice in bucket:
                emit(parts + [choice])
        for cost, bucket in entries[t_any:t_all]:
            child_signature = with_cost(cost, ())
            for choice in bucket:
                next_parts = parts + [choice] if choice else parts
                visit(i + 1, next_parts, child_signature)

    def node_gen(i: int, parts: List[Choice], signature: CostSignature):
        """:func:`visit` as a suspended generator: every ``verdict``
        call becomes a yield answered by the batched driver, children
        are returned for scheduling instead of recursed into.  The
        query sequence and side effects mirror :func:`visit` line by
        line."""
        nonlocal count, nodes
        nodes += 1
        if (yield signature):
            count += suffix[i]
            emit(parts)
            return None
        if i == d:
            return None
        rest_max = tuple(
            (names[j], max_costs[j]) for j in range(i + 1, d) if max_costs[j] > 0
        )

        def with_cost(cost: float, extra: CostSignature) -> CostSignature:
            if cost > 0:
                return signature + ((names[i], cost),) + extra
            return signature + extra

        if not (yield with_cost(max_costs[i], rest_max)):
            return None

        entries = grouped[i]
        lo, hi = 0, len(entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if (yield with_cost(entries[mid][0], ())):
                hi = mid
            else:
                lo = mid + 1
        t_all = lo
        lo, hi = 0, len(entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if (yield with_cost(entries[mid][0], rest_max)):
                hi = mid
            else:
                lo = mid + 1
        t_any = lo
        for cost, bucket in entries[t_all:]:
            count += len(bucket) * suffix[i + 1]
            for choice in bucket:
                emit(parts + [choice])
        children = []
        for cost, bucket in entries[t_any:t_all]:
            child_signature = with_cost(cost, ())
            for choice in bucket:
                next_parts = parts + [choice] if choice else parts
                children.append(node_gen(i + 1, next_parts, child_signature))
        return children

    if batch:
        _drive_batched([node_gen(0, [], ())], evaluate_block, memo)
        flags = [False] * len(candidates)

        def minimal_gen(index: int, combo: Combination):
            flags[index] = bool((yield from _minimal_probe(combo)))
            return None

        _drive_batched(
            [minimal_gen(index, combo) for index, combo in enumerate(candidates)],
            evaluate_block,
            memo,
        )
        minimal = [combo for combo, keep in zip(candidates, flags) if keep]
    else:
        visit(0, [], ())
        minimal = [c for c in candidates if _is_minimal(c, verdict)]
    minimal.sort(key=lambda c: tuple(sorted(c.keys)))
    return CombinationSearchResult(
        total=total, unschedulable=count, minimal=minimal, checks=checks, nodes=nodes
    )


def _minimal_probe(combo: Combination):
    """The query protocol behind :func:`_is_minimal` as a generator:
    yields the per-chain reduced signatures to test (in the order the
    sequential check always used), receives each verdict via ``send``,
    and returns the minimality decision — ``False`` as soon as a
    flagged strict subset appears, ``True`` when every probe survived.
    Driving it sequentially reproduces the historic early-exit check
    exactly; the batched driver advances many probes per round.
    """
    if len(combo.segments) == 1:
        return True
    groups: Dict[str, List[float]] = {}
    for seg in combo.segments:
        groups.setdefault(seg.chain_name, []).append(seg.wcet)
    signature = combo.signature
    for name, wcets in groups.items():
        remaining = sorted(wcets)[1:]  # drop one cheapest member
        reduced = math.fsum(remaining)
        entries = [(n, c) for n, c in signature if n != name]
        if reduced > 0:
            entries.append((name, reduced))
        entries.sort()
        if (yield tuple(entries)):
            return False
    return True


def _is_minimal(combo: Combination, verdict: Callable[[CostSignature], bool]) -> bool:
    """True iff no strict subset of ``combo`` is itself flagged.

    By monotonicity it suffices to test, per chain, the subset dropping
    that chain's cheapest member — the co-atom leaving the most residual
    cost; every other single-removal is dominated by it.
    """
    probe = _minimal_probe(combo)
    try:
        request = next(probe)
        while True:
            request = probe.send(verdict(request))
    except StopIteration as stop:
        return bool(stop.value)
