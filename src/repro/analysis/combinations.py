"""Combinations of overload active segments (Defs. 9 and 10).

A *combination* is a set of active segments of the overload chains with
the structural restriction that active segments of the same chain must
belong to the same segment — Lemma 1 and 2 guarantee exactly those sets
can hit one busy window of the analyzed chain together.

Combination schedulability is decided by the linear criterion Eq. (5),
which reduces to a cost threshold: the combination is unschedulable iff
its summed WCET exceeds the minimum slack
``S* = min_q (delta_minus(q) + D - L(q))``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..model import System, TaskChain
from .segments import ActiveSegment, active_segments


@dataclass(frozen=True)
class Combination:
    """A set of overload active segments hitting one busy window."""

    segments: Tuple[ActiveSegment, ...]

    @property
    def cost(self) -> float:
        """Summed WCET of the member active segments (the r-term of
        Eq. (3)/(5))."""
        return sum(seg.wcet for seg in self.segments)

    @property
    def keys(self) -> Tuple[Tuple[str, int], ...]:
        """Identity keys of the member segments (chain name, start)."""
        return tuple(seg.key for seg in self.segments)

    def uses(self, segment: ActiveSegment) -> bool:
        """True iff the combination contains ``segment``."""
        return segment.key in set(self.keys)

    def __len__(self) -> int:
        return len(self.segments)

    def __str__(self) -> str:
        inner = ", ".join(str(s) for s in self.segments)
        return f"{{{inner}}}"


def overload_active_segments(
        system: System, target: TaskChain) -> Dict[str, List[ActiveSegment]]:
    """Active segments of every overload chain w.r.t. ``target``,
    keyed by chain name.

    Overload chains that arbitrarily interfere with ``target`` have no
    segment decomposition in the Def. 3 sense; for them the *whole chain*
    acts as a single segment (the case study: sigma_a and sigma_b each
    contribute one segment ``(tau^1 ... tau^n)``), which is then split
    into active segments by the Def. 8 rule.
    """
    from .interference import is_deferred
    from .memo import active_cache, content_key

    cache = active_cache()
    cache_key = None
    if cache is not None:
        digest = content_key(system)
        if digest is not None:
            cache_key = (digest, target.name)
            hit = cache.lookup("segments", cache_key)
            if hit is not None:
                return {name: list(segs) for name, segs in hit.items()}

    result: Dict[str, List[ActiveSegment]] = {}
    for chain in system.overload_chains:
        if chain.name == target.name:
            continue
        if is_deferred(chain, target):
            result[chain.name] = active_segments(chain, target)
        else:
            # Whole chain is one segment; partition it by the tail rule.
            tail_priority = target.tail.priority
            segs: List[ActiveSegment] = []
            current: List = []
            current_start = 0
            for index, task in enumerate(chain.tasks):
                if not current:
                    current = [task]
                    current_start = index
                elif task.priority > tail_priority:
                    current.append(task)
                else:
                    segs.append(ActiveSegment(
                        chain.name, 0, current_start, tuple(current)))
                    current = [task]
                    current_start = index
            if current:
                segs.append(ActiveSegment(
                    chain.name, 0, current_start, tuple(current)))
            result[chain.name] = segs
    if cache_key is not None:
        cache.store("segments", cache_key,
                    {name: list(segs) for name, segs in result.items()})
    return result


def enumerate_combinations(
        segments_by_chain: Dict[str, List[ActiveSegment]],
        max_count: int = 100_000) -> List[Combination]:
    """All non-empty combinations per Def. 9.

    Per chain the choices are: nothing, or any non-empty subset of the
    active segments of **one** segment of that chain.  The global
    combination is the union of per-chain choices; the all-empty choice
    is excluded.

    Raises ``ValueError`` when the combination count would exceed
    ``max_count`` (use the threshold criterion / capacity-aware solvers
    for such systems).
    """
    per_chain_choices: List[List[Tuple[ActiveSegment, ...]]] = []
    expected = 1
    for chain_name in sorted(segments_by_chain):
        segs = segments_by_chain[chain_name]
        by_segment: Dict[int, List[ActiveSegment]] = {}
        for seg in segs:
            by_segment.setdefault(seg.segment_index, []).append(seg)
        choices: List[Tuple[ActiveSegment, ...]] = [()]
        for seg_index in sorted(by_segment):
            group = by_segment[seg_index]
            for size in range(1, len(group) + 1):
                for subset in itertools.combinations(group, size):
                    choices.append(subset)
        per_chain_choices.append(choices)
        expected *= len(choices)
        if expected > max_count:
            raise ValueError(
                f"combination count exceeds {max_count}; "
                "enumerate_combinations is not applicable")

    combos: List[Combination] = []
    for assignment in itertools.product(*per_chain_choices):
        members = tuple(itertools.chain.from_iterable(assignment))
        if members:
            combos.append(Combination(members))
    return combos


def split_by_schedulability(
        combinations: Iterable[Combination],
        min_slack: float) -> Tuple[List[Combination], List[Combination]]:
    """Partition combinations into (schedulable, unschedulable) using the
    Eq. (5) threshold: unschedulable iff ``cost > min_slack``."""
    schedulable: List[Combination] = []
    unschedulable: List[Combination] = []
    for combo in combinations:
        if combo.cost > min_slack:
            unschedulable.append(combo)
        else:
            schedulable.append(combo)
    return schedulable, unschedulable
