"""Typical Worst-Case Analysis for task chains (Sec. V, Theorem 3).

The entry point is :func:`analyze_twca`, which classifies a chain as

* ``SCHEDULABLE`` — its full worst-case latency (overload included) meets
  the deadline; the DMM is identically 0;
* ``WEAKLY_HARD`` — the typical (overload-free) system meets the
  deadline; the DMM is computed from the Theorem 3 packing ILP;
* ``NO_GUARANTEE`` — even the typical system can miss (or a busy window
  diverges); the only valid DMM is the vacuous ``dmm(k) = k``.

The Theorem 3 ILP maximizes the number of unschedulable combinations
packed into the busy windows touched by a k-sequence, subject to the
per-active-segment capacities ``Omega^a_b(k)`` of Lemma 4; the optimum is
scaled by ``N_b`` (Lemma 3) and clamped to ``k``.

Combination schedulability is a pure monotone function of the per-chain
cost signature, so the default ``enumeration="pruned"`` mode never
materializes the exponential combination set: it runs the
dominance-pruned frontier search of
:func:`repro.analysis.combinations.search_combinations`, memoizes the
exact Def. 10 verdict per signature (persistently, through an installed
:class:`~repro.runner.cache.AnalysisCache` under the ``combo_exact``
category), and keeps only counts plus the inclusion-minimal
representatives the packing ILP needs.  ``enumeration="exhaustive"``
restores the classic materializing pipeline; both modes classify every
combination identically, so counts, DMM curves and exports are
byte-identical.

Packing solves are *incremental*: the inclusion-minimal combinations are
wrapped once per chain in a :class:`repro.ilp.PackingInstance`, and every
``dmm(k)`` / :meth:`ChainTwcaResult.dmm_curve` evaluation resolves the
same engine against the grown ``Omega`` capacities — warm-started
incumbents, reused LP bases, memoized rhs vectors, plus a persistent
``packing`` cache category when an analysis cache is installed.  The
historic cold path is retained as :meth:`ChainTwcaResult.dmm_reference`
for differential validation.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..ilp import IntegerProgram, PackingEngine, PackingInstance, solve
from ..ilp.branch_bound import solve_branch_bound
from ..kernel import numpy_or_none, solve_monotone_fixed_points_2d
from ..model import System, TaskChain
from .busy_window import (
    _busy_times_block,
    _InterferenceModel,
    busy_time,
    criterion_loads,
)
from .combinations import (
    Combination,
    CostSignature,
    enumerate_combinations,
    iter_combinations,
    overload_active_segments,
    search_combinations,
)
from .exceptions import BusyWindowDivergence, NotAnalyzable
from .latency import LatencyResult, analyze_latency
from .memo import active_cache, content_key
from .segments import ActiveSegment

#: The supported combination-pipeline modes of :func:`analyze_twca`.
ENUMERATION_MODES: Tuple[str, ...] = ("pruned", "exhaustive")


class GuaranteeStatus(enum.Enum):
    """Outcome class of the TWCA of one chain."""

    SCHEDULABLE = "schedulable"
    WEAKLY_HARD = "weakly-hard"
    NO_GUARANTEE = "no-guarantee"


@dataclass
class ChainTwcaResult:
    """Everything the TWCA of one chain produced.

    The deadline miss model itself is exposed through :meth:`dmm`.
    Combination artifacts are kept as counts plus the inclusion-minimal
    unschedulable representatives (all the Theorem 3 packing consumes);
    the full ``combinations`` / ``unschedulable`` lists remain available
    as lazily materialized properties for reports and tests, identical
    in content to the historic eager fields.
    """

    system: System
    chain_name: str
    deadline: float
    status: GuaranteeStatus
    full_latency: Optional[LatencyResult] = None
    typical_latency: Optional[LatencyResult] = None
    n_b: int = 0
    min_slack: float = math.inf
    active_segments: Dict[str, List[ActiveSegment]] = field(default_factory=dict)
    combination_count: int = 0
    unschedulable_count: int = 0
    minimal: Optional[List[Combination]] = None
    backend: str = "branch_bound"
    enumeration: str = "pruned"
    exact_criterion: bool = True
    search_checks: int = 0
    search_nodes: int = 0
    _combinations_cache: Optional[List[Combination]] = field(
        default=None, init=False, repr=False
    )
    _unschedulable_cache: Optional[List[Combination]] = field(
        default=None, init=False, repr=False
    )
    _membership: Optional[Callable[[CostSignature], bool]] = field(
        default=None, init=False, repr=False
    )
    _omega_cache: Dict[Tuple[float, ...], int] = field(default_factory=dict, repr=False)
    _engine: Optional[PackingEngine] = field(default=None, init=False, repr=False)
    _engine_rows: Tuple[str, ...] = field(default=(), init=False, repr=False)
    _saturations: int = field(default=0, init=False, repr=False)

    # ------------------------------------------------------------------
    # Combination views (lazy; the analysis itself only stores counts)
    # ------------------------------------------------------------------
    def __getstate__(self):
        # The signature-verdict closure is process-local (it captures
        # the memo tables of its analysis run) and unpicklable; drop it
        # so results stay picklable like they always were.  Nothing is
        # lost: the verdict is a pure function of retained state and is
        # rebuilt on demand by :meth:`_verdict`.  The packing engine is
        # process-local solver state rebuilt the same way (its per-rhs
        # optima survive in ``_omega_cache``).
        state = self.__dict__.copy()
        state["_membership"] = None
        state["_engine"] = None
        state["_engine_rows"] = ()
        return state

    def _verdict(self) -> Optional[Callable[[CostSignature], bool]]:
        """The signature -> unschedulable predicate, rebuilt from the
        retained analysis state when the original closure is gone
        (pickled results, memory-trimmed results)."""
        if self._membership is None:
            if not self.active_segments or self.full_latency is None:
                return None
            target = self.system[self.chain_name]
            deltas = {
                q: target.activation.delta_minus(q)
                for q in range(1, self.full_latency.max_queue + 1)
            }
            loads = criterion_loads(self.system, target, tuple(deltas))
            self._membership = _build_verdict(
                self.system,
                target,
                deltas,
                loads,
                self.active_segments,
                exact_criterion=self.exact_criterion,
            )
        return self._membership

    @property
    def combinations(self) -> List[Combination]:
        """Every Def. 9 combination, materialized on first access."""
        if self._combinations_cache is None:
            self._combinations_cache = list(iter_combinations(self.active_segments))
        return self._combinations_cache

    @property
    def unschedulable(self) -> List[Combination]:
        """Every unschedulable combination, materialized on first
        access by replaying the (memoized, rebuildable) signature
        verdict."""
        if self._unschedulable_cache is None:
            verdict = self._verdict()
            if verdict is None:
                self._unschedulable_cache = []
            else:
                self._unschedulable_cache = [
                    combo for combo in self.combinations if verdict(combo.signature)
                ]
                # The materialized list answers everything the closure
                # could; release the captured analysis environment.
                self._membership = None
        return self._unschedulable_cache

    # ------------------------------------------------------------------
    # Lemma 4
    # ------------------------------------------------------------------
    def omega(self, overload_chain: str, k: int) -> float:
        """``Omega^a_b(k)``: maximum activations of the overload chain
        that can impact a k-sequence of the analyzed chain (Lemma 4)."""
        if self.full_latency is None:
            return math.inf
        cache = active_cache()
        cache_key = None
        if cache is not None:
            digest = content_key(self.system)
            if digest is not None:
                cache_key = (digest, self.chain_name, overload_chain, k)
                hit = cache.lookup("omega", cache_key)
                if hit is not None:
                    return hit
        target = self.system[self.chain_name]
        source = self.system[overload_chain]
        window = target.activation.delta_plus(k) + self.full_latency.wcl
        if math.isinf(window):
            value = math.inf
        else:
            value = source.activation.eta_plus(window) + 1
        if cache_key is not None:
            cache.store("omega", cache_key, value)
        return value

    # ------------------------------------------------------------------
    # Theorem 3
    # ------------------------------------------------------------------
    def dmm(self, k: int) -> int:
        """``dmm_b(k)``: bound on deadline misses in any ``k``
        consecutive activations (Theorem 3), clamped to ``k``.

        Packing optima are produced by the per-chain incremental engine
        (see :meth:`packing_engine`): the per-omega-tuple memo answers
        repeated capacities, a previously packed witness that already
        saturates the ``k`` clamp short-circuits the solve entirely
        (sound: capacities only grow with ``k``, so the witness stays
        feasible and the true optimum can only be larger), and fresh
        tuples are re-solved warm.  An installed analysis cache
        additionally persists the optima under the ``packing`` category.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if self.status is GuaranteeStatus.SCHEDULABLE:
            return 0
        if self.status is GuaranteeStatus.NO_GUARANTEE:
            return k
        if not self.unschedulable_count:
            return 0

        chain_names = sorted(self.active_segments)
        omegas = {name: self.omega(name, k) for name in chain_names}
        if any(math.isinf(om) for om in omegas.values()):
            return k  # vacuous: unbounded overload impact

        cache_key = tuple(omegas[name] for name in chain_names)
        cached = self._omega_cache.get(cache_key)
        if cached is None:
            cached = self._lookup_packing(cache_key)
        if cached is None:
            engine, row_chains = self.packing_engine()
            rhs = [float(omegas[name]) for name in row_chains]
            bound = engine.lower_bound(rhs)
            if bound is not None and self.n_b * int(round(bound)) >= k:
                self._saturations += 1
                return k
            cached = self._solve_packing(omegas)
            self._store_packing(cache_key, cached)
        self._omega_cache[cache_key] = cached
        return min(k, self.n_b * cached)

    def dmm_reference(self, k: int) -> int:
        """``dmm_b(k)`` through the historic cold path: a fresh Theorem 3
        program built and cold-solved for this single ``k``, no engine,
        no memo, no caches.  Exists for differential validation of the
        incremental engine (tests, benchmarks); always byte-identical to
        :meth:`dmm`."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if self.status is GuaranteeStatus.SCHEDULABLE:
            return 0
        if self.status is GuaranteeStatus.NO_GUARANTEE:
            return k
        if not self.unschedulable_count:
            return 0
        omegas = {name: self.omega(name, k) for name in sorted(self.active_segments)}
        if any(math.isinf(om) for om in omegas.values()):
            return k
        return min(k, self.n_b * self.solve_packing_cold(omegas))

    def minimal_unschedulable(self) -> List[Combination]:
        """Inclusion-minimal unschedulable combinations.

        Restricting the packing to these preserves the Theorem 3
        optimum: any packed superset can be replaced by a minimal
        subset, keeping the count while only freeing capacity.  This
        shrinks the ILP substantially when many overload chains exist.
        The pruned pipeline collects them directly during the frontier
        search; otherwise they are filtered from the full list.
        """
        if self.minimal is not None:
            return self.minimal
        key_sets = [c.key_set for c in self.unschedulable]
        minimal: List[Combination] = []
        for index, combo in enumerate(self.unschedulable):
            keys = key_sets[index]
            if not any(other < keys for other in key_sets):
                minimal.append(combo)
        return minimal

    def packing_engine(self) -> Tuple[PackingEngine, Tuple[str, ...]]:
        """The per-chain incremental packing engine and the overload
        chain owning each constraint row (the rhs layout of
        ``engine.resolve``).  Built once from the inclusion-minimal
        unschedulable combinations; process-local (rebuilt after
        unpickling)."""
        if self._engine is None:
            combos = self.minimal_unschedulable()
            rows: List[List[float]] = []
            row_chains: List[str] = []
            for chain_name in sorted(self.active_segments):
                for segment in self.active_segments[chain_name]:
                    row = [1.0 if combo.uses(segment) else 0.0 for combo in combos]
                    if any(row):
                        rows.append(row)
                        row_chains.append(chain_name)
            instance = PackingInstance(
                objective=[1.0] * len(combos),
                rows=rows,
                names=[str(c) for c in combos],
            )
            self._engine = instance.engine(self.backend)
            self._engine_rows = tuple(row_chains)
        return self._engine, self._engine_rows

    def packing_stats(self) -> Dict[str, int]:
        """Work counters of the packing engine (empty until the first
        :meth:`dmm` evaluation needed a packing solve).  ``saturations``
        counts curve points answered by a previously packed witness
        without solving at all."""
        if self._engine is None and not self._saturations:
            return {}
        stats = self._engine.stats.as_dict() if self._engine is not None else {}
        stats["saturations"] = self._saturations
        return stats

    def _solve_packing(self, omegas: Dict[str, float]) -> int:
        """Resolve the Theorem 3 packing against the engine: max
        combinations used subject to the per-active-segment capacity of
        its overload chain."""
        engine, row_chains = self.packing_engine()
        rhs = [float(omegas[name]) for name in row_chains]
        solution = engine.resolve(rhs)
        if not solution.is_optimal:
            raise RuntimeError(f"packing ILP did not solve: {solution.status}")
        return int(round(solution.objective))

    def solve_packing_cold(self, omegas: Dict[str, float]) -> int:
        """The historic stateless packing path: build the full
        :class:`~repro.ilp.IntegerProgram` (explicit upper bounds
        included) and cold-solve it — for the default backend through
        the legacy per-node two-phase relaxations, with no engine state
        whatsoever.  Reference implementation for differential
        validation; the bounds are implied by the rows, so the optimum
        is identical to the engine's."""
        combos = self.minimal_unschedulable()
        rows: List[List[float]] = []
        rhs: List[float] = []
        for chain_name in sorted(self.active_segments):
            capacity = omegas[chain_name]
            for segment in self.active_segments[chain_name]:
                row = [1.0 if combo.uses(segment) else 0.0 for combo in combos]
                if any(row):
                    rows.append(row)
                    rhs.append(float(capacity))
        program = IntegerProgram(
            objective=[1.0] * len(combos),
            rows=rows,
            rhs=rhs,
            upper_bounds=[max(omegas.values())] * len(combos),
            names=[str(c) for c in combos],
        )
        if self.backend == "branch_bound":
            solution = solve_branch_bound(program, incremental=False)
        else:
            solution = solve(program, backend=self.backend)
        if not solution.is_optimal:
            raise RuntimeError(f"packing ILP did not solve: {solution.status}")
        return int(round(solution.objective))

    def _packing_cache_key(self, cache_key: Tuple[float, ...]):
        cache = active_cache()
        if cache is None:
            return None, None
        digest = content_key(self.system)
        if digest is None:
            return None, None
        return cache, (digest, self.chain_name, self.backend, cache_key)

    def _lookup_packing(self, cache_key: Tuple[float, ...]) -> Optional[int]:
        cache, key = self._packing_cache_key(cache_key)
        if cache is None:
            return None
        return cache.lookup("packing", key)

    def _store_packing(self, cache_key: Tuple[float, ...], value: int) -> None:
        cache, key = self._packing_cache_key(cache_key)
        if cache is not None:
            cache.store("packing", key, value)

    def dmm_curve(self, ks: Sequence[int]) -> Dict[int, int]:
        """Evaluate the DMM over several window sizes.

        The whole curve runs through one engine instance, in ascending
        ``k`` order so the monotonically growing ``Omega`` capacities
        warm-start each other; the returned dict preserves the caller's
        ``ks`` order.
        """
        values = {k: self.dmm(k) for k in sorted(set(ks))}
        return {k: values[k] for k in ks}

    def explain(self, ks: Sequence[int] = (1, 10, 100)) -> str:
        """Human-readable account of the analysis: verdict, latencies,
        combinations, capacities, a DMM table and the packing-engine
        counters (the DMM curve is evaluated first so the summary's
        solver-stats line reflects it)."""
        from ..report.tables import twca_summary

        dmm_line = "  dmm: " + ", ".join(f"dmm({k}) = {self.dmm(k)}" for k in ks)
        lines = [twca_summary(self)]
        if self.status is GuaranteeStatus.WEAKLY_HARD:
            for name in sorted(self.active_segments):
                segments = ", ".join(str(seg) for seg in self.active_segments[name])
                omegas = {k: self.omega(name, k) for k in ks}
                lines.append(f"  {name}: active segments [{segments}], Omega {omegas}")
        lines.append(dmm_line)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Convenience predicates
    # ------------------------------------------------------------------
    @property
    def is_schedulable(self) -> bool:
        return self.status is GuaranteeStatus.SCHEDULABLE

    @property
    def has_guarantee(self) -> bool:
        return self.status is not GuaranteeStatus.NO_GUARANTEE

    @property
    def wcl(self) -> float:
        """Full worst-case latency (``inf`` if the analysis diverged)."""
        return math.inf if self.full_latency is None else self.full_latency.wcl


def analyze_twca(
    system: System,
    target: TaskChain,
    *,
    backend: str = "branch_bound",
    max_combinations: int = 100_000,
    exact_criterion: bool = True,
    enumeration: str = "pruned",
) -> ChainTwcaResult:
    """Run the complete Sec. V analysis for ``target`` within ``system``.

    Combination schedulability is decided in two stages, both from the
    paper: the cheap Eq. (5) threshold first, then — for combinations it
    flags unschedulable — the exact Def. 10 check via the Eq. (3) fixed
    point.  Eq. (5) alone (``exact_criterion=False``) is sound but can
    be very conservative for deadlines well above the activation
    distance, because its fixed evaluation window ``delta(q) + D``
    admits interference the real busy window never sees.

    ``enumeration`` selects the combination pipeline: ``"pruned"`` (the
    default) runs the lazy dominance-pruned frontier search and ignores
    ``max_combinations`` (it never materializes the set);
    ``"exhaustive"`` enumerates every combination eagerly and raises
    ``ValueError`` beyond ``max_combinations``.  Both modes produce
    identical classifications, counts and DMM curves.

    Raises
    ------
    NotAnalyzable
        If ``target`` has no finite deadline or is itself an overload
        chain.
    """
    if enumeration not in ENUMERATION_MODES:
        raise ValueError(
            f"enumeration must be one of {ENUMERATION_MODES}, got {enumeration!r}"
        )
    if not target.has_deadline:
        raise NotAnalyzable(f"chain {target.name!r} has no finite deadline")
    if target.overload:
        raise NotAnalyzable(
            f"chain {target.name!r} is an overload chain; DMMs are "
            "computed for typical chains"
        )

    # Step 1: full latency analysis (Theorem 2), overload included.
    try:
        full = analyze_latency(system, target, include_overload=True)
    except BusyWindowDivergence:
        return ChainTwcaResult(
            system=system,
            chain_name=target.name,
            deadline=target.deadline,
            status=GuaranteeStatus.NO_GUARANTEE,
            backend=backend,
            enumeration=enumeration,
        )

    if full.wcl <= target.deadline:
        return ChainTwcaResult(
            system=system,
            chain_name=target.name,
            deadline=target.deadline,
            status=GuaranteeStatus.SCHEDULABLE,
            full_latency=full,
            backend=backend,
            enumeration=enumeration,
        )

    # Step 2: typical latency (overload abstracted away).
    try:
        typical = analyze_latency(system, target, include_overload=False)
    except BusyWindowDivergence:
        typical = None
    if typical is None or typical.wcl > target.deadline:
        return ChainTwcaResult(
            system=system,
            chain_name=target.name,
            deadline=target.deadline,
            status=GuaranteeStatus.NO_GUARANTEE,
            full_latency=full,
            typical_latency=typical,
            backend=backend,
            enumeration=enumeration,
        )

    # Step 3: N_b (Lemma 3) and the Eq. (5) machinery.  The Eq. (5)
    # criterion loads for the whole q range share one window scan.
    n_b = full.deadline_miss_count(target.deadline)
    deltas = {
        q: target.activation.delta_minus(q) for q in range(1, full.max_queue + 1)
    }
    loads = criterion_loads(system, target, tuple(deltas))
    slack = min(deltas[q] + target.deadline - loads[q] for q in deltas)

    # Step 4: combinations of overload active segments (Defs. 8 and 9)
    # and the signature-keyed schedulability verdict.
    segments_by_chain = overload_active_segments(system, target)
    verdict = _build_verdict(
        system,
        target,
        deltas,
        loads,
        segments_by_chain,
        exact_criterion=exact_criterion,
    )

    # Step 5: classify — frontier search by default, eager on request.
    if enumeration == "exhaustive":
        combos = enumerate_combinations(segments_by_chain, max_count=max_combinations)
        unschedulable = [c for c in combos if verdict(c.signature)]
        result = ChainTwcaResult(
            system=system,
            chain_name=target.name,
            deadline=target.deadline,
            status=GuaranteeStatus.WEAKLY_HARD,
            full_latency=full,
            typical_latency=typical,
            n_b=n_b,
            min_slack=slack,
            active_segments=segments_by_chain,
            combination_count=len(combos),
            unschedulable_count=len(unschedulable),
            backend=backend,
            enumeration=enumeration,
            exact_criterion=exact_criterion,
        )
        result._combinations_cache = combos
        result._unschedulable_cache = unschedulable
    else:
        search = search_combinations(segments_by_chain, verdict)
        result = ChainTwcaResult(
            system=system,
            chain_name=target.name,
            deadline=target.deadline,
            status=GuaranteeStatus.WEAKLY_HARD,
            full_latency=full,
            typical_latency=typical,
            n_b=n_b,
            min_slack=slack,
            active_segments=segments_by_chain,
            combination_count=search.total,
            unschedulable_count=search.unschedulable,
            minimal=search.minimal,
            backend=backend,
            enumeration=enumeration,
            exact_criterion=exact_criterion,
            search_checks=search.checks,
            search_nodes=search.nodes,
        )
        # Keep the analysis-run verdict (with its warm memo) for the
        # lazy views; the eager mode's materialized lists already
        # answer everything, so it would only pin memory there.
        result._membership = verdict
    return result


def _build_verdict(
    system: System,
    target: TaskChain,
    deltas: Dict[int, float],
    loads: Dict[int, float],
    segments_by_chain: Dict[str, List[ActiveSegment]],
    *,
    exact_criterion: bool,
    multi_q: bool = True,
) -> Callable[[CostSignature], bool]:
    """The memoized signature -> unschedulable predicate of Step 5.

    Stage one is the Eq. (5) threshold over the fixed windows
    ``delta_minus(q) + D``; stage two (``exact_criterion``) the exact
    Def. 10 re-check via the Eq. (3) fixed point.  Both depend only on
    the per-chain cost signature (the within-window overload
    multiplicities are per *chain*, so member costs group), and both are
    monotone in it — the property the pruned search relies on.

    The Eq. (5) multiplicities are precomputed per (q, chain).  The
    exact stage computes the typical fixed points once (batched, per
    verdict), seeds every combination's Kleene iteration from them
    (sound: the typical fixed point lower-bounds the combination-loaded
    one, and any seed below the least fixed point converges to exactly
    the same value), and its verdict is memoized per signature —
    in-process always, and persistently under the ``combo_exact``
    category when an :class:`~repro.runner.cache.AnalysisCache` is
    installed.

    ``multi_q`` selects the Def. 10 evaluator: the default advances the
    Eq. (3) fixed points of *all* ``q`` simultaneously over one
    interference structure (one batched curve evaluation per chain per
    Kleene sweep); ``multi_q=False`` keeps the historic one-``q``-at-a-
    time loop — one scalar ``busy_time`` evaluation per step — as the
    differential reference for tests and the hot-path benchmark.  Both
    return identical verdicts for every signature.

    In multi-q mode the returned predicate additionally exposes
    ``many(signatures)``: the same staged decision for a whole block of
    signatures, with the undecided remainder advanced as one 2-D
    (signature x q) masked Kleene iteration.  The pruned frontier
    search batches its pending signature stream through it; memo and
    cache entries stay identical to per-signature calls.
    """
    deadline = target.deadline
    # Within-window overload multiplicities for the fixed Eq. (5)
    # windows.  The paper assumes at most one overload activation per
    # busy window; bursty models can violate that, so every chain is
    # charged its eta_plus over the window (1 in the paper's setting).
    eq5_mults = {
        q: {
            name: max(1, system[name].activation.eta_plus(deltas[q] + deadline))
            for name in segments_by_chain
        }
        for q in deltas
    }

    typical_fixed: Dict[int, float] = {}

    def typical_fixed_point(q: int) -> float:
        value = typical_fixed.get(q)
        if value is None:
            try:
                value = busy_time(system, target, q, include_overload=False).total
            except BusyWindowDivergence:
                value = math.inf
            typical_fixed[q] = value
        return value

    def typical_fixed_points_all() -> Dict[int, float]:
        """Every typical fixed point of the q range, computed as one
        batched block on first use (same cache keys as the scalar
        path)."""
        if len(typical_fixed) < len(deltas):
            outcomes = _busy_times_block(
                system, target, tuple(deltas), include_overload=False
            )
            for q, outcome in outcomes.items():
                typical_fixed[q] = (
                    math.inf
                    if isinstance(outcome, BusyWindowDivergence)
                    else outcome.total
                )
        return typical_fixed

    def eq5_flags(signature: CostSignature) -> bool:
        for q in deltas:
            horizon = deltas[q] + deadline
            mults = eq5_mults[q]
            cost = sum(weight * mults[name] for name, weight in signature)
            if loads[q] + cost > horizon:
                return True
        return False

    # Process-local lazies of the multi-q evaluator: one typical
    # interference structure serves every signature and every sweep.
    typical_model: List[Optional[_InterferenceModel]] = [None]

    def exact_unschedulable_multi_q(signature: CostSignature) -> bool:
        """Def. 10 via the Eq. (3) fixed points of all ``q`` advanced
        simultaneously: per-``q`` convergence masking, miss early-exit,
        one batched curve evaluation per chain per sweep."""
        typicals = typical_fixed_points_all()
        qs = [q for q in deltas]
        if any(math.isinf(typicals[q]) for q in qs):
            return True  # typical part diverges: no fixed point
        if typical_model[0] is None:
            typical_model[0] = _InterferenceModel(
                system, target, include_overload=False
            )
        model = typical_model[0]
        np = numpy_or_none()
        activations = [(system[name].activation, weight) for name, weight in signature]
        horizons = [
            max(typicals[q], q * target.total_wcet, 1.0) for q in qs
        ]
        sweeps = [0] * len(qs)
        active = list(range(len(qs)))
        while active:
            probe = [horizons[i] for i in active]
            typical_totals = model.totals_many([qs[i] for i in active], probe)
            cost = 0.0
            if np is None:
                costs = [
                    sum(
                        weight * max(1, activation.eta_plus(horizon))
                        for activation, weight in activations
                    )
                    for horizon in probe
                ]
                totals = [t + c for t, c in zip(typical_totals, costs)]
            else:
                for activation, weight in activations:
                    cost = cost + weight * np.maximum(
                        activation.eta_plus_many(probe), 1
                    )
                totals = typical_totals + cost
            next_active = []
            for i, total in zip(active, totals):
                total = float(total)
                q = qs[i]
                if total <= horizons[i]:
                    if total - deltas[q] > deadline:
                        return True  # converged past the deadline; miss
                    continue  # converged and schedulable for this q
                if total - deltas[q] > deadline:
                    return True  # already past the deadline; miss
                sweeps[i] += 1
                if sweeps[i] >= 10_000:
                    return True  # no fixed point: treat as unschedulable
                horizons[i] = total
                next_active.append(i)
            active = next_active
        return False

    def exact_unschedulable_block(signatures: Sequence[CostSignature]) -> List[bool]:
        """Def. 10 for a whole *block* of signatures: every
        ``(signature, q)`` cell is one independent Eq. (3) fixed point,
        advanced together as a 2-D masked Kleene iteration
        (:func:`~repro.kernel.solve_monotone_fixed_points_2d`).  Each
        sweep evaluates every arrival curve exactly once over the
        horizon vector of all still-active cells (the typical part
        through ``_InterferenceModel.totals_many``, the combination
        part through a per-signature weight gather over the union of
        overloading chains — absent chains weigh ``0.0``, which adds
        exactly nothing, so each cell's arithmetic is bit-identical to
        the 1-D per-signature path).  A deadline miss at any cell
        settles its whole signature row (the Def. 10 early exit).
        Seeds, iteration budget and miss tests mirror the 1-D
        evaluator, so verdicts — and the memo/cache entries derived
        from them — are identical for every signature.
        """
        if not signatures:
            return []
        typicals = typical_fixed_points_all()
        qs = [q for q in deltas]
        if any(math.isinf(typicals[q]) for q in qs):
            return [True] * len(signatures)  # typical part diverges
        if typical_model[0] is None:
            typical_model[0] = _InterferenceModel(
                system, target, include_overload=False
            )
        model = typical_model[0]
        np = numpy_or_none()
        acts = [
            [(system[name].activation, weight) for name, weight in signature]
            for signature in signatures
        ]
        delta_by_col = [deltas[q] for q in qs]
        if np is not None:
            union = sorted({name for signature in signatures for name, _ in signature})
            union_acts = [system[name].activation for name in union]
            index = {name: ci for ci, name in enumerate(union)}
            weights = np.zeros((len(signatures), len(union)), dtype=np.float64)
            for r, signature in enumerate(signatures):
                for name, weight in signature:
                    weights[r, index[name]] = weight
            q_by_col = np.asarray(qs, dtype=np.int64)
            delta_arr = np.asarray(delta_by_col, dtype=np.float64)

            def totals_many(rows, cols, horizons):
                typical_totals = model.totals_many(q_by_col[cols], horizons)
                cost = np.zeros(rows.size, dtype=np.float64)
                for ci, activation in enumerate(union_acts):
                    cell_weights = weights[rows, ci]
                    # Evaluate each union curve only over the cells
                    # whose signature actually weights it: a dropped
                    # term is an exact ``+ 0.0 * eta``, so per-cell
                    # arithmetic — and therefore every verdict — stays
                    # bit-identical while the eta work matches the 1-D
                    # per-signature path.
                    mask = cell_weights != 0.0
                    if not mask.any():
                        continue
                    if mask.all():
                        cost += cell_weights * np.maximum(
                            activation.eta_plus_many(horizons), 1
                        )
                    else:
                        cost[mask] += cell_weights[mask] * np.maximum(
                            activation.eta_plus_many(horizons[mask]), 1
                        )
                return typical_totals + cost

            def stop_row(rows, cols, totals):
                return totals - delta_arr[cols] > deadline

        else:

            def totals_many(cells, horizons):
                typical_totals = model.totals_many(
                    [qs[c] for _, c in cells], horizons
                )
                return [
                    t
                    + sum(
                        weight * max(1, activation.eta_plus(horizon))
                        for activation, weight in acts[r]
                    )
                    for t, (r, _), horizon in zip(typical_totals, cells, horizons)
                ]

            def stop_row(r, c, total):
                return total - delta_by_col[c] > deadline

        def totals_one(r, c, horizon):
            return model.evaluate(qs[c], horizon).total + sum(
                weight * max(1, activation.eta_plus(horizon))
                for activation, weight in acts[r]
            )

        wcet = target.total_wcet
        row_seed = [max(typicals[q], q * wcet, 1.0) for q in qs]
        seeds = [list(row_seed) for _ in signatures]
        _values, _iterations, failures, stopped = solve_monotone_fixed_points_2d(
            seeds,
            totals_many,
            totals_one,
            max_window=math.inf,
            max_iterations=9_999,
            stop_row=stop_row,
            cells_as_arrays=np is not None,
        )
        results: List[bool] = []
        for r in range(len(signatures)):
            if stopped[r]:
                results.append(True)  # some q missed its deadline
                continue
            value = False
            for failure in failures[r]:
                if failure is not None:
                    if failure.startswith("overflow:"):
                        # The 1-D evaluator propagates curve overflows;
                        # keep the block path's behaviour identical.
                        raise OverflowError(failure[len("overflow: ") :])
                    value = True  # no fixed point: treat as unschedulable
            results.append(value)
        return results

    def exact_unschedulable_scalar(signature: CostSignature) -> bool:
        """The historic Def. 10 loop: one ``q`` at a time, one scalar
        ``busy_time`` window evaluation per Kleene step.  Differential
        reference of the multi-q path."""
        for q in deltas:
            typical_total = typical_fixed_point(q)
            if math.isinf(typical_total):
                return True  # typical part diverges: no fixed point
            horizon = max(typical_total, q * target.total_wcet, 1.0)
            for _ in range(10_000):
                typical = busy_time(
                    system, target, q, include_overload=False, window=horizon
                ).total
                cost = sum(
                    weight * max(1, system[name].activation.eta_plus(horizon))
                    for name, weight in signature
                )
                total = typical + cost
                if total <= horizon:
                    break
                if total - deltas[q] > deadline:
                    return True  # already past the deadline; miss
                horizon = total
            else:
                return True  # no fixed point: treat as unschedulable
            if total - deltas[q] > deadline:
                return True
        return False

    exact_unschedulable = (
        exact_unschedulable_multi_q if multi_q else exact_unschedulable_scalar
    )

    def exact_memoized(signature: CostSignature) -> bool:
        cache = active_cache()
        cache_key = None
        if cache is not None:
            digest = content_key(system)
            if digest is not None:
                cache_key = (digest, target.name, signature)
                hit = cache.lookup("combo_exact", cache_key)
                if hit is not None:
                    return hit
        value = exact_unschedulable(signature)
        if cache_key is not None:
            cache.store("combo_exact", cache_key, value)
        return value

    memo: Dict[CostSignature, bool] = {}

    def verdict(signature: CostSignature) -> bool:
        value = memo.get(signature)
        if value is None:
            if not eq5_flags(signature):
                value = False
            elif not exact_criterion:
                value = True
            else:
                value = exact_memoized(signature)
            memo[signature] = value
        return value

    def verdict_many(signatures: Sequence[CostSignature]) -> List[bool]:
        """Batched :func:`verdict`: decide a whole block of signatures
        through one 2-D (signature x q) masked Kleene iteration.

        Stages, memo entries and ``combo_exact`` cache interactions are
        identical to calling ``verdict`` per signature — the Eq. (5)
        pre-filter, the ``exact_criterion`` switch and the persistent
        cache lookup run per signature first, and only the remaining
        undecided signatures form the exact Def. 10 block.
        """
        cache = active_cache()
        digest = content_key(system) if cache is not None else None
        block: List[CostSignature] = []
        block_keys: Dict[CostSignature, Optional[tuple]] = {}
        for signature in signatures:
            if signature in memo or signature in block_keys:
                continue
            if not eq5_flags(signature):
                memo[signature] = False
                continue
            if not exact_criterion:
                memo[signature] = True
                continue
            cache_key = None
            if digest is not None:
                cache_key = (digest, target.name, signature)
                hit = cache.lookup("combo_exact", cache_key)
                if hit is not None:
                    memo[signature] = hit
                    continue
            block_keys[signature] = cache_key
            block.append(signature)
        if block:
            for signature, value in zip(block, exact_unschedulable_block(block)):
                cache_key = block_keys[signature]
                if cache_key is not None:
                    cache.store("combo_exact", cache_key, value)
                memo[signature] = value
        return [memo[signature] for signature in signatures]

    # Unmemoized stage hooks for the differential tests and the
    # hot-path benchmark (they bypass the Eq. (5) pre-filter and the
    # signature memo on purpose).
    verdict.exact_check = exact_unschedulable
    verdict.eq5_flags = eq5_flags
    if multi_q:
        # The batched entry points exist only in multi-q mode: the
        # scalar-reference verdict stays the historic
        # one-signature-at-a-time pipeline end to end (which also makes
        # it the sequential-search reference in the differential tests).
        verdict.many = verdict_many
        verdict.exact_check_many = exact_unschedulable_block
    return verdict


def analyze_all(
    system: System, *, backend: str = "branch_bound"
) -> Dict[str, ChainTwcaResult]:
    """TWCA for every typical chain with a finite deadline."""
    results: Dict[str, ChainTwcaResult] = {}
    for chain in system.typical_chains:
        if chain.has_deadline:
            results[chain.name] = analyze_twca(system, chain, backend=backend)
    return results
