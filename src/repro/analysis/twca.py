"""Typical Worst-Case Analysis for task chains (Sec. V, Theorem 3).

The entry point is :func:`analyze_twca`, which classifies a chain as

* ``SCHEDULABLE`` — its full worst-case latency (overload included) meets
  the deadline; the DMM is identically 0;
* ``WEAKLY_HARD`` — the typical (overload-free) system meets the
  deadline; the DMM is computed from the Theorem 3 packing ILP;
* ``NO_GUARANTEE`` — even the typical system can miss (or a busy window
  diverges); the only valid DMM is the vacuous ``dmm(k) = k``.

The Theorem 3 ILP maximizes the number of unschedulable combinations
packed into the busy windows touched by a k-sequence, subject to the
per-active-segment capacities ``Omega^a_b(k)`` of Lemma 4; the optimum is
scaled by ``N_b`` (Lemma 3) and clamped to ``k``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ilp import IntegerProgram, solve
from ..model import System, TaskChain
from .busy_window import busy_time, criterion_load
from .combinations import (Combination, enumerate_combinations,
                           overload_active_segments)
from .exceptions import BusyWindowDivergence, NotAnalyzable
from .latency import LatencyResult, analyze_latency
from .memo import active_cache, content_key
from .segments import ActiveSegment


class GuaranteeStatus(enum.Enum):
    """Outcome class of the TWCA of one chain."""

    SCHEDULABLE = "schedulable"
    WEAKLY_HARD = "weakly-hard"
    NO_GUARANTEE = "no-guarantee"


@dataclass
class ChainTwcaResult:
    """Everything the TWCA of one chain produced.

    The deadline miss model itself is exposed through :meth:`dmm`;
    intermediate artifacts (latencies, combinations, slack) are kept for
    reporting and tests.
    """

    system: System
    chain_name: str
    deadline: float
    status: GuaranteeStatus
    full_latency: Optional[LatencyResult] = None
    typical_latency: Optional[LatencyResult] = None
    n_b: int = 0
    min_slack: float = math.inf
    active_segments: Dict[str, List[ActiveSegment]] = field(
        default_factory=dict)
    combinations: List[Combination] = field(default_factory=list)
    unschedulable: List[Combination] = field(default_factory=list)
    backend: str = "branch_bound"
    _omega_cache: Dict[Tuple[float, ...], int] = field(
        default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Lemma 4
    # ------------------------------------------------------------------
    def omega(self, overload_chain: str, k: int) -> float:
        """``Omega^a_b(k)``: maximum activations of the overload chain
        that can impact a k-sequence of the analyzed chain (Lemma 4)."""
        if self.full_latency is None:
            return math.inf
        cache = active_cache()
        cache_key = None
        if cache is not None:
            digest = content_key(self.system)
            if digest is not None:
                cache_key = (digest, self.chain_name, overload_chain, k)
                hit = cache.lookup("omega", cache_key)
                if hit is not None:
                    return hit
        target = self.system[self.chain_name]
        source = self.system[overload_chain]
        window = target.activation.delta_plus(k) + self.full_latency.wcl
        if math.isinf(window):
            value = math.inf
        else:
            value = source.activation.eta_plus(window) + 1
        if cache_key is not None:
            cache.store("omega", cache_key, value)
        return value

    # ------------------------------------------------------------------
    # Theorem 3
    # ------------------------------------------------------------------
    def dmm(self, k: int) -> int:
        """``dmm_b(k)``: bound on deadline misses in any ``k``
        consecutive activations (Theorem 3), clamped to ``k``."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if self.status is GuaranteeStatus.SCHEDULABLE:
            return 0
        if self.status is GuaranteeStatus.NO_GUARANTEE:
            return k
        if not self.unschedulable:
            return 0

        chain_names = sorted(self.active_segments)
        omegas = {name: self.omega(name, k) for name in chain_names}
        if any(math.isinf(om) for om in omegas.values()):
            return k  # vacuous: unbounded overload impact

        cache_key = tuple(omegas[name] for name in chain_names)
        cached = self._omega_cache.get(cache_key)
        if cached is None:
            cached = self._solve_packing(omegas)
            self._omega_cache[cache_key] = cached
        return min(k, self.n_b * cached)

    def minimal_unschedulable(self) -> List[Combination]:
        """Inclusion-minimal unschedulable combinations.

        Restricting the packing to these preserves the Theorem 3
        optimum: any packed superset can be replaced by a minimal
        subset, keeping the count while only freeing capacity.  This
        shrinks the ILP substantially when many overload chains exist.
        """
        key_sets = [frozenset(c.keys) for c in self.unschedulable]
        minimal: List[Combination] = []
        for index, combo in enumerate(self.unschedulable):
            keys = key_sets[index]
            if not any(other < keys for other in key_sets):
                minimal.append(combo)
        return minimal

    def _solve_packing(self, omegas: Dict[str, float]) -> int:
        """Solve the Theorem 3 packing: max combinations used subject to
        the per-active-segment capacity of its overload chain."""
        combos = self.minimal_unschedulable()
        rows: List[List[float]] = []
        rhs: List[float] = []
        for chain_name in sorted(self.active_segments):
            capacity = omegas[chain_name]
            for segment in self.active_segments[chain_name]:
                row = [1.0 if combo.uses(segment) else 0.0
                       for combo in combos]
                if any(row):
                    rows.append(row)
                    rhs.append(float(capacity))
        program = IntegerProgram(
            objective=[1.0] * len(combos),
            rows=rows,
            rhs=rhs,
            upper_bounds=[max(omegas.values())] * len(combos),
            names=[str(c) for c in combos])
        solution = solve(program, backend=self.backend)
        if not solution.is_optimal:
            raise RuntimeError(
                f"packing ILP did not solve: {solution.status}")
        return int(round(solution.objective))

    def dmm_curve(self, ks: Sequence[int]) -> Dict[int, int]:
        """Evaluate the DMM over several window sizes."""
        return {k: self.dmm(k) for k in ks}

    def explain(self, ks: Sequence[int] = (1, 10, 100)) -> str:
        """Human-readable account of the analysis: verdict, latencies,
        combinations, capacities and a DMM table."""
        from ..report.tables import twca_summary
        lines = [twca_summary(self)]
        if self.status is GuaranteeStatus.WEAKLY_HARD:
            for name in sorted(self.active_segments):
                segments = ", ".join(
                    str(seg) for seg in self.active_segments[name])
                omegas = {k: self.omega(name, k) for k in ks}
                lines.append(f"  {name}: active segments [{segments}], "
                             f"Omega {omegas}")
        lines.append("  dmm: " + ", ".join(
            f"dmm({k}) = {self.dmm(k)}" for k in ks))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Convenience predicates
    # ------------------------------------------------------------------
    @property
    def is_schedulable(self) -> bool:
        return self.status is GuaranteeStatus.SCHEDULABLE

    @property
    def has_guarantee(self) -> bool:
        return self.status is not GuaranteeStatus.NO_GUARANTEE

    @property
    def wcl(self) -> float:
        """Full worst-case latency (``inf`` if the analysis diverged)."""
        return math.inf if self.full_latency is None else \
            self.full_latency.wcl


def analyze_twca(system: System, target: TaskChain, *,
                 backend: str = "branch_bound",
                 max_combinations: int = 100_000,
                 exact_criterion: bool = True) -> ChainTwcaResult:
    """Run the complete Sec. V analysis for ``target`` within ``system``.

    Combination schedulability is decided in two stages, both from the
    paper: the cheap Eq. (5) threshold first, then — for combinations it
    flags unschedulable — the exact Def. 10 check via the Eq. (3) fixed
    point.  Eq. (5) alone (``exact_criterion=False``) is sound but can
    be very conservative for deadlines well above the activation
    distance, because its fixed evaluation window ``delta(q) + D``
    admits interference the real busy window never sees.

    Raises
    ------
    NotAnalyzable
        If ``target`` has no finite deadline or is itself an overload
        chain.
    """
    if not target.has_deadline:
        raise NotAnalyzable(
            f"chain {target.name!r} has no finite deadline")
    if target.overload:
        raise NotAnalyzable(
            f"chain {target.name!r} is an overload chain; DMMs are "
            "computed for typical chains")

    # Step 1: full latency analysis (Theorem 2), overload included.
    try:
        full = analyze_latency(system, target, include_overload=True)
    except BusyWindowDivergence:
        return ChainTwcaResult(
            system=system, chain_name=target.name, deadline=target.deadline,
            status=GuaranteeStatus.NO_GUARANTEE, backend=backend)

    if full.wcl <= target.deadline:
        return ChainTwcaResult(
            system=system, chain_name=target.name, deadline=target.deadline,
            status=GuaranteeStatus.SCHEDULABLE, full_latency=full,
            backend=backend)

    # Step 2: typical latency (overload abstracted away).
    try:
        typical = analyze_latency(system, target, include_overload=False)
    except BusyWindowDivergence:
        typical = None
    if typical is None or typical.wcl > target.deadline:
        return ChainTwcaResult(
            system=system, chain_name=target.name, deadline=target.deadline,
            status=GuaranteeStatus.NO_GUARANTEE, full_latency=full,
            typical_latency=typical, backend=backend)

    # Step 3: N_b (Lemma 3) and the Eq. (5) machinery.
    n_b = full.deadline_miss_count(target.deadline)
    deltas = {q: target.activation.delta_minus(q)
              for q in range(1, full.max_queue + 1)}
    loads = {q: criterion_load(system, target, q) for q in deltas}
    slack = min(deltas[q] + target.deadline - loads[q] for q in deltas)

    # The paper assumes at most one overload activation per busy
    # window.  Bursty overload models can violate that, so every
    # combination segment is charged its within-window multiplicity
    # eta_plus_a(window); when the assumption holds the multiplicity is
    # 1 and this reduces exactly to the paper's criterion.
    def multiplicity(chain_name: str, horizon: float) -> int:
        return max(1, system[chain_name].activation.eta_plus(horizon))

    def eq5_flags_unschedulable(combo: Combination) -> bool:
        for q in deltas:
            horizon = deltas[q] + target.deadline
            cost = sum(seg.wcet * multiplicity(seg.chain_name, horizon)
                       for seg in combo.segments)
            if loads[q] + cost > horizon:
                return True
        return False

    def exact_unschedulable(combo: Combination) -> bool:
        """Def. 10 via the Eq. (3) fixed point, with within-window
        overload multiplicities."""
        for q in deltas:
            horizon = max(q * target.total_wcet, 1.0)
            for _ in range(10_000):
                try:
                    typical = busy_time(system, target, q,
                                        include_overload=False,
                                        window=horizon).total
                except BusyWindowDivergence:
                    return True
                cost = sum(
                    seg.wcet * multiplicity(seg.chain_name, horizon)
                    for seg in combo.segments)
                total = typical + cost
                if total <= horizon:
                    break
                if total - deltas[q] > target.deadline:
                    return True  # already past the deadline; miss
                horizon = total
            else:
                return True  # no fixed point: treat as unschedulable
            if total - deltas[q] > target.deadline:
                return True
        return False

    # Step 4: combinations of overload active segments (Defs. 8 and 9).
    segments_by_chain = overload_active_segments(system, target)
    combos = enumerate_combinations(segments_by_chain,
                                    max_count=max_combinations)
    suspects = [combo for combo in combos
                if eq5_flags_unschedulable(combo)]

    # Step 5: exact Def. 10 re-check of the Eq. (5) suspects.
    if exact_criterion and suspects:
        unschedulable = [combo for combo in suspects
                         if exact_unschedulable(combo)]
    else:
        unschedulable = suspects

    return ChainTwcaResult(
        system=system, chain_name=target.name, deadline=target.deadline,
        status=GuaranteeStatus.WEAKLY_HARD, full_latency=full,
        typical_latency=typical, n_b=n_b, min_slack=slack,
        active_segments=segments_by_chain, combinations=combos,
        unschedulable=unschedulable, backend=backend)


def analyze_all(system: System, *, backend: str = "branch_bound"
                ) -> Dict[str, ChainTwcaResult]:
    """TWCA for every typical chain with a finite deadline."""
    results: Dict[str, ChainTwcaResult] = {}
    for chain in system.typical_chains:
        if chain.has_deadline:
            results[chain.name] = analyze_twca(system, chain,
                                               backend=backend)
    return results
