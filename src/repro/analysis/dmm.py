"""Deadline miss models as first-class objects (Def. 1).

A :class:`DeadlineMissModel` wraps the ``dmm(k)`` function produced by
the TWCA (or by simulation, or by a baseline) and offers the standard
weakly-hard queries on top of it.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple


class DeadlineMissModel:
    """A function ``dmm(k)`` bounding misses in ``k`` consecutive runs.

    Wraps any evaluator (analysis result, lookup table, simulation
    estimate) and enforces the Def. 1 sanity properties on access:
    results are clamped to ``[0, k]`` and memoized.
    """

    def __init__(self, evaluator: Callable[[int], int],
                 name: str = "dmm", source: str = "analysis"):
        self._evaluator = evaluator
        self.name = name
        self.source = source
        self._cache: Dict[int, int] = {}

    @classmethod
    def from_table(cls, table: Dict[int, int], name: str = "dmm",
                   source: str = "table") -> "DeadlineMissModel":
        """Build from explicit ``{k: dmm(k)}`` samples; intermediate
        ``k`` values use the largest sampled ``k' <= k`` (valid because a
        DMM is non-decreasing)."""
        if not table:
            raise ValueError("table must not be empty")
        ordered = sorted(table.items())

        def evaluate(k: int) -> int:
            best = 0
            for sample_k, misses in ordered:
                if sample_k <= k:
                    best = misses
                else:
                    break
            return best

        return cls(evaluate, name=name, source=source)

    def __call__(self, k: int) -> int:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if k not in self._cache:
            value = int(self._evaluator(k))
            self._cache[k] = max(0, min(k, value))
        return self._cache[k]

    # ------------------------------------------------------------------
    # Weakly-hard constraint queries
    # ------------------------------------------------------------------
    def satisfies_any_n_in_m(self, n: int, m: int) -> bool:
        """True iff at most ``n`` deadlines are missed in any window of
        ``m`` consecutive executions — the weakly-hard constraint written
        ``(n overbar, m)`` by Bernat et al."""
        if not 0 <= n <= m:
            raise ValueError(f"need 0 <= n <= m, got n={n}, m={m}")
        return self(m) <= n

    def satisfies_m_k(self, m: int, k: int) -> bool:
        """True iff at least ``m`` out of any ``k`` consecutive deadlines
        are met — the classic (m,k)-firm guarantee of Hamdaoui &
        Ramanathan."""
        if not 0 <= m <= k:
            raise ValueError(f"need 0 <= m <= k, got m={m}, k={k}")
        return self(k) <= k - m

    def miss_ratio_bound(self, k: int) -> float:
        """Upper bound on the miss ratio over windows of size ``k``."""
        return self(k) / k

    def first_violation(self, n: int, k_max: int = 10_000) -> Optional[int]:
        """Smallest window size whose miss bound exceeds ``n``; ``None``
        if no window up to ``k_max`` does."""
        for k in range(1, k_max + 1):
            if self(k) > n:
                return k
        return None

    def transitions(self, k_max: int) -> List[Tuple[int, int]]:
        """The staircase of the DMM: ``(k, dmm(k))`` at every k where the
        bound increases, up to ``k_max``."""
        points: List[Tuple[int, int]] = []
        previous = None
        for k in range(1, k_max + 1):
            value = self(k)
            if previous is None or value > previous:
                points.append((k, value))
                previous = value
        return points

    def table(self, ks: Iterable[int]) -> Dict[int, int]:
        """Evaluate over explicit window sizes."""
        return {k: self(k) for k in ks}

    def __repr__(self) -> str:
        return f"DeadlineMissModel({self.name!r}, source={self.source!r})"


def dominates(tighter: DeadlineMissModel, looser: DeadlineMissModel,
              ks: Sequence[int]) -> bool:
    """True iff ``tighter(k) <= looser(k)`` for all sampled ``k`` — used
    to compare analysis variants and baselines."""
    return all(tighter(k) <= looser(k) for k in ks)
