"""Deadline miss models as first-class objects (Def. 1).

A :class:`DeadlineMissModel` wraps the ``dmm(k)`` function produced by
the TWCA (or by simulation, or by a baseline) and offers the standard
weakly-hard queries on top of it.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple


class DeadlineMissModel:
    """A function ``dmm(k)`` bounding misses in ``k`` consecutive runs.

    Wraps any evaluator (analysis result, lookup table, simulation
    estimate) and enforces the Def. 1 sanity properties on access:
    results are clamped to ``[0, k]`` and memoized.
    """

    def __init__(
        self,
        evaluator: Callable[[int], int],
        name: str = "dmm",
        source: str = "analysis",
    ):
        self._evaluator = evaluator
        self.name = name
        self.source = source
        self._cache: Dict[int, int] = {}

    @classmethod
    def from_table(
        cls, table: Dict[int, int], name: str = "dmm", source: str = "table"
    ) -> "DeadlineMissModel":
        """Build from explicit ``{k: dmm(k)}`` samples; intermediate
        ``k`` values use the largest sampled ``k' <= k`` (valid because a
        DMM is non-decreasing).  The sample staircase is sorted once and
        answered by binary search."""
        if not table:
            raise ValueError("table must not be empty")
        samples = sorted(table.items())
        keys = [k for k, _ in samples]
        misses = [m for _, m in samples]

        def evaluate(k: int) -> int:
            index = bisect_right(keys, k)
            return 0 if index == 0 else misses[index - 1]

        return cls(evaluate, name=name, source=source)

    @classmethod
    def from_result(
        cls, result, name: Optional[str] = None, source: str = "twca"
    ) -> "DeadlineMissModel":
        """Wrap a :class:`~repro.analysis.twca.ChainTwcaResult` (or any
        object with ``dmm(k)`` and ``chain_name``): queries run through
        the result's incremental packing engine, so staircase scans and
        weakly-hard checks reuse one warm solver."""
        return cls(
            result.dmm,
            name=name or f"dmm[{result.chain_name}]",
            source=source,
        )

    def __call__(self, k: int) -> int:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if k not in self._cache:
            value = int(self._evaluator(k))
            self._cache[k] = max(0, min(k, value))
        return self._cache[k]

    # ------------------------------------------------------------------
    # Weakly-hard constraint queries
    # ------------------------------------------------------------------
    def satisfies_any_n_in_m(self, n: int, m: int) -> bool:
        """True iff at most ``n`` deadlines are missed in any window of
        ``m`` consecutive executions — the weakly-hard constraint written
        ``(n overbar, m)`` by Bernat et al."""
        if not 0 <= n <= m:
            raise ValueError(f"need 0 <= n <= m, got n={n}, m={m}")
        return self(m) <= n

    def satisfies_m_k(self, m: int, k: int) -> bool:
        """True iff at least ``m`` out of any ``k`` consecutive deadlines
        are met — the classic (m,k)-firm guarantee of Hamdaoui &
        Ramanathan."""
        if not 0 <= m <= k:
            raise ValueError(f"need 0 <= m <= k, got m={m}, k={k}")
        return self(k) <= k - m

    def miss_ratio_bound(self, k: int) -> float:
        """Upper bound on the miss ratio over windows of size ``k``."""
        return self(k) / k

    def first_violation(self, n: int, k_max: int = 10_000) -> Optional[int]:
        """Smallest window size whose miss bound exceeds ``n``; ``None``
        if no window up to ``k_max`` does.

        A DMM is non-decreasing (Def. 1), so the answer is found by
        galloping from ``k = 1`` and bisecting the bracketed staircase
        interval — ``O(log answer)`` evaluations, never probing far
        beyond the violation (an early violation costs a handful of
        small-``k`` probes even when the evaluator is expensive or
        undefined at large ``k``)."""
        if k_max < 1:
            return None
        lo, hi = 0, 1  # invariant once galloping stops: self(lo) <= n
        while hi < k_max and self(hi) <= n:
            lo = hi
            hi = min(2 * hi, k_max)
        if self(hi) <= n:
            return None
        index = bisect_right(range(lo + 1, hi), n, key=self)
        return lo + 1 + index

    def transitions(self, k_max: int) -> List[Tuple[int, int]]:
        """The staircase of the DMM: ``(k, dmm(k))`` at every k where the
        bound increases, up to ``k_max``."""
        points: List[Tuple[int, int]] = []
        previous = None
        for k in range(1, k_max + 1):
            value = self(k)
            if previous is None or value > previous:
                points.append((k, value))
                previous = value
        return points

    def table(self, ks: Iterable[int]) -> Dict[int, int]:
        """Evaluate over explicit window sizes."""
        return {k: self(k) for k in ks}

    def __repr__(self) -> str:
        return f"DeadlineMissModel({self.name!r}, source={self.source!r})"


def dominates(
    tighter: DeadlineMissModel, looser: DeadlineMissModel, ks: Sequence[int]
) -> bool:
    """True iff ``tighter(k) <= looser(k)`` for all sampled ``k`` — used
    to compare analysis variants and baselines."""
    return all(tighter(k) <= looser(k) for k in ks)
