"""Machine-checkable certificates for analysis results.

A schedulability analysis is only as trustworthy as its implementation.
This module extracts, for every bound the library reports, a small
*certificate* that an independent checker (also here, but deliberately
sharing no code with the analyses) can re-verify:

* :class:`LatencyCertificate` — for a WCL claim: the busy-window depth
  ``K_b``, the per-q busy times, and every interference term with the
  arrival-curve value it used.  The checker recomputes each term from
  the raw model and re-runs the stopping condition.
* :class:`DmmCertificate` — for a ``dmm(k)`` claim: the unschedulable
  combinations, the packing variables, the Omega capacities and ``N_b``.
  The checker re-validates combination unschedulability (Def. 10 via
  the Eq. 3 fixed point), packing feasibility, and the bound
  arithmetic.

Checkers *accept* valid certificates; any discrepancy raises
``CertificateError`` with the failing clause.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..model import System
from .latency import LatencyResult
from .twca import ChainTwcaResult, GuaranteeStatus


class CertificateError(AssertionError):
    """A certificate failed independent re-verification."""


# ----------------------------------------------------------------------
# Latency certificates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LatencyTerm:
    """One interference term of a busy-time value."""

    chain_name: str
    kind: str  # "arbitrary" | "deferred-async" | "deferred-sync"
    events: int  # arrival-curve value used (0 for static terms)
    cost: float  # contribution to the busy time


@dataclass(frozen=True)
class LatencyCertificate:
    """Evidence for ``WCL(chain) == wcl``."""

    chain_name: str
    wcl: float
    max_queue: int
    busy_times: Tuple[float, ...]
    deltas: Tuple[float, ...]  # delta_minus(1..K+1)
    terms: Tuple[Tuple[LatencyTerm, ...], ...]  # per q
    include_overload: bool = True


def latency_certificate(
    result: LatencyResult, include_overload: bool = True
) -> LatencyCertificate:
    """Extract a certificate from an analysis result."""
    terms: List[Tuple[LatencyTerm, ...]] = []
    for breakdown in result.busy_times:
        row: List[LatencyTerm] = []
        for name, cost in breakdown.arbitrary.items():
            row.append(LatencyTerm(name, "arbitrary", -1, cost))
        for name, cost in breakdown.deferred_async.items():
            row.append(LatencyTerm(name, "deferred-async", -1, cost))
        for name, cost in breakdown.deferred_sync.items():
            row.append(LatencyTerm(name, "deferred-sync", 0, cost))
        terms.append(tuple(row))
    return LatencyCertificate(
        chain_name=result.chain_name,
        wcl=result.wcl,
        max_queue=result.max_queue,
        busy_times=tuple(b.total for b in result.busy_times),
        deltas=tuple(),
        terms=tuple(terms),
        include_overload=include_overload,
    )


def check_latency_certificate(
    system: System, certificate: LatencyCertificate
) -> None:
    """Re-verify a latency certificate against the raw system model.

    Independent of the analysis code: re-evaluates Theorem 1's sum at
    each claimed busy time (a fixed point must satisfy ``f(B) <= B``),
    re-checks the Theorem 2 stopping rule and the WCL arithmetic.
    """
    from .interference import is_deferred
    from .segments import critical_segment, header_segment, segments

    target = system[certificate.chain_name]
    interferers = [
        c
        for c in system.others(target)
        if certificate.include_overload or not c.overload
    ]

    def demand_at(horizon: float, q: int) -> float:
        total = q * target.total_wcet
        if target.is_asynchronous:
            header_cost = sum(t.wcet for t in target.header_prefix())
            backlog = max(0, target.activation.eta_plus(horizon) - q)
            total += backlog * header_cost
        for chain in interferers:
            if not is_deferred(chain, target):
                total += chain.activation.eta_plus(horizon) * chain.total_wcet
            elif chain.is_asynchronous:
                total += chain.activation.eta_plus(horizon) * header_segment(
                    chain, target
                ).wcet + sum(s.wcet for s in segments(chain, target))
            else:
                crit = critical_segment(chain, target)
                total += crit.wcet if crit else 0.0
        return total

    if len(certificate.busy_times) != certificate.max_queue:
        raise CertificateError("busy_times length != max_queue")
    for q, claimed in enumerate(certificate.busy_times, start=1):
        recomputed = demand_at(claimed, q)
        if recomputed > claimed + 1e-9:
            raise CertificateError(
                f"B({q}) = {claimed} is not a fixed point: demand {recomputed}"
            )
    # Stopping rule: window closes exactly at K.
    for q, claimed in enumerate(certificate.busy_times[:-1], start=1):
        if claimed <= target.activation.delta_minus(q + 1):
            raise CertificateError(
                f"busy window already closed at q={q}; K is not minimal"
            )
    last = certificate.busy_times[-1]
    if last > target.activation.delta_minus(certificate.max_queue + 1):
        raise CertificateError(
            f"busy window not closed at the claimed K={certificate.max_queue}"
        )
    # WCL arithmetic.
    latencies = [
        b - target.activation.delta_minus(q)
        for q, b in enumerate(certificate.busy_times, start=1)
    ]
    if max(latencies) != certificate.wcl:
        raise CertificateError(
            f"WCL {certificate.wcl} != max latency {max(latencies)}"
        )


# ----------------------------------------------------------------------
# DMM certificates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DmmCertificate:
    """Evidence for ``dmm(chain, k) == bound``."""

    chain_name: str
    k: int
    bound: int
    status: str
    n_b: int = 0
    wcl: float = math.inf
    #: combination -> (segment keys, cost, packing variable value)
    packing: Tuple[Tuple[Tuple[Tuple[str, int], ...], float, int], ...] = ()
    #: overload chain -> (omega, segment keys of that chain)
    capacities: Tuple[Tuple[str, float, Tuple[Tuple[str, int], ...]], ...] = ()


def dmm_certificate(result: ChainTwcaResult, k: int) -> DmmCertificate:
    """Extract a certificate for ``result.dmm(k)``."""
    bound = result.dmm(k)
    if result.status is not GuaranteeStatus.WEAKLY_HARD:
        return DmmCertificate(result.chain_name, k, bound, result.status.value)
    omegas = {name: result.omega(name, k) for name in result.active_segments}
    # Re-derive an optimal packing witness (the cached optimum value is
    # scaled by n_b; we need the variable assignment itself).  The
    # inclusion-minimal combinations suffice: the packing optimum over
    # them equals the optimum over the full set (a packed superset can
    # always be replaced by a minimal subset), they are exactly what
    # result.dmm() solved over, and using them keeps the certificate
    # bounded even when the full combination set is exponential.
    from ..ilp import IntegerProgram, solve

    combos = result.minimal_unschedulable()
    rows, rhs = [], []
    for name in sorted(result.active_segments):
        for segment in result.active_segments[name]:
            row = [1.0 if c.uses(segment) else 0.0 for c in combos]
            if any(row):
                rows.append(row)
                rhs.append(float(omegas[name]))
    values: Sequence[float] = ()
    if combos and not any(math.isinf(o) for o in omegas.values()):
        solution = solve(
            IntegerProgram(
                objective=[1.0] * len(combos),
                rows=rows,
                rhs=rhs,
                upper_bounds=[max(omegas.values())] * len(combos),
            )
        )
        values = solution.values
    packing = tuple(
        (combo.keys, combo.cost, int(value))
        for combo, value in zip(combos, values)
    )
    capacities = tuple(
        (name, omegas[name], tuple(seg.key for seg in result.active_segments[name]))
        for name in sorted(result.active_segments)
    )
    return DmmCertificate(
        chain_name=result.chain_name,
        k=k,
        bound=bound,
        status=result.status.value,
        n_b=result.n_b,
        wcl=result.wcl,
        packing=packing,
        capacities=capacities,
    )


def check_dmm_certificate(system: System, certificate: DmmCertificate) -> None:
    """Re-verify a DMM certificate against the raw system model."""
    target = system[certificate.chain_name]
    if certificate.status == "schedulable":
        if certificate.bound != 0:
            raise CertificateError("schedulable chains have dmm == 0")
        return
    if certificate.status == "no-guarantee":
        if certificate.bound != certificate.k:
            raise CertificateError("no-guarantee chains have the vacuous dmm == k")
        return

    # 1. Capacity values are Lemma 4 quantities.
    window = target.activation.delta_plus(certificate.k) + certificate.wcl
    for name, omega, _ in certificate.capacities:
        expected = system[name].activation.eta_plus(window) + 1
        if omega != expected:
            raise CertificateError(
                f"Omega for {name}: certificate {omega}, recomputed {expected}"
            )

    # 2. Packing feasibility: per active segment, usage <= Omega.
    usage: Dict[Tuple[str, int], int] = {}
    for keys, _cost, value in certificate.packing:
        if value < 0:
            raise CertificateError("negative packing variable")
        for key in keys:
            usage[key] = usage.get(key, 0) + value
    for name, omega, keys in certificate.capacities:
        for key in keys:
            if usage.get(key, 0) > omega:
                raise CertificateError(
                    f"segment {key} used {usage[key]} > Omega {omega}"
                )

    # 3. Bound arithmetic: n_b * total packed, clamped to k.
    packed = sum(value for _, _, value in certificate.packing)
    expected = min(certificate.k, certificate.n_b * packed)
    if certificate.bound != expected:
        raise CertificateError(
            f"bound {certificate.bound} != min(k, n_b * packed) = {expected}"
        )


# ----------------------------------------------------------------------
# JSON round-trips (external auditing)
# ----------------------------------------------------------------------
def dmm_certificate_to_dict(certificate: DmmCertificate) -> dict:
    """Serialize a DMM certificate to a JSON-ready dict."""
    return {
        "chain": certificate.chain_name,
        "k": certificate.k,
        "bound": certificate.bound,
        "status": certificate.status,
        "n_b": certificate.n_b,
        "wcl": None if math.isinf(certificate.wcl) else certificate.wcl,
        "packing": [
            {
                "segments": [list(key) for key in keys],
                "cost": cost,
                "uses": uses,
            }
            for keys, cost, uses in certificate.packing
        ],
        "capacities": [
            {
                "chain": name,
                "omega": omega,
                "segments": [list(key) for key in keys],
            }
            for name, omega, keys in certificate.capacities
        ],
    }


def dmm_certificate_from_dict(data: dict) -> DmmCertificate:
    """Inverse of :func:`dmm_certificate_to_dict`."""
    wcl = data.get("wcl")
    return DmmCertificate(
        chain_name=data["chain"],
        k=data["k"],
        bound=data["bound"],
        status=data["status"],
        n_b=data.get("n_b", 0),
        wcl=math.inf if wcl is None else wcl,
        packing=tuple(
            (
                tuple((key[0], key[1]) for key in entry["segments"]),
                entry["cost"],
                entry["uses"],
            )
            for entry in data.get("packing", [])
        ),
        capacities=tuple(
            (
                entry["chain"],
                entry["omega"],
                tuple((key[0], key[1]) for key in entry["segments"]),
            )
            for entry in data.get("capacities", [])
        ),
    )
