"""Context-local memoization hook for the analyses.

The heavy analysis primitives (the Theorem 1 fixed point, the Lemma 4
``Omega`` capacities and the Def. 8 active-segment decompositions) are
pure functions of system *content*.  This module lets a caller install a
cache object that those primitives consult; :mod:`repro.runner.cache`
provides the standard implementation, but anything with the same
``lookup``/``store`` duck type works.

The hook is a :class:`contextvars.ContextVar`, not a module global:
every thread (and every ``contextvars`` context) sees exactly the cache
*it* installed via :func:`using_cache`, so concurrent analyses — e.g.
overlapping computes inside the ``repro serve`` daemon — can run under
different caches without cross-contaminating each other's memo state.
Batch worker processes are unaffected: each process starts from the
default context and installs its one cache around its jobs exactly as
before.  ``None`` (the default) disables memoization entirely, so
library users who never touch the runner see no behavior change.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from typing import Any, Iterator, Optional

_ACTIVE: ContextVar[Optional[Any]] = ContextVar("repro_analysis_cache", default=None)


def active_cache() -> Optional[Any]:
    """The analysis cache installed in the current context (or ``None``)."""
    return _ACTIVE.get()


def set_active_cache(cache: Optional[Any]) -> Optional[Any]:
    """Install ``cache`` for the current context (compatibility shim).

    Historic API from when the hook was a process-wide module global;
    prefer :func:`using_cache`, which restores the previous cache even
    across exceptions.  Returns the previously installed cache so
    callers can restore it.
    """
    previous = _ACTIVE.get()
    _ACTIVE.set(cache)
    return previous


@contextlib.contextmanager
def using_cache(cache: Optional[Any]) -> Iterator[Optional[Any]]:
    """Context manager: install ``cache`` for the duration of the block."""
    token = _ACTIVE.set(cache)
    try:
        yield cache
    finally:
        _ACTIVE.reset(token)


def content_key(system: Any) -> Optional[str]:
    """``system.content_digest()``, or ``None`` when the system cannot
    be canonically serialized (e.g. user-defined event models) or the
    object has no ``content_digest`` at all — callers must then bypass
    the cache rather than risk key collisions (or crash mid-request)."""
    try:
        return system.content_digest()
    except (TypeError, AttributeError):
        return None
