"""Process-local memoization hook for the analyses.

The heavy analysis primitives (the Theorem 1 fixed point, the Lemma 4
``Omega`` capacities and the Def. 8 active-segment decompositions) are
pure functions of system *content*.  This module lets a caller install a
cache object that those primitives consult; :mod:`repro.runner.cache`
provides the standard implementation, but anything with the same
``lookup``/``store`` duck type works.

The hook is deliberately process-local state: every worker process of a
batch run owns exactly one cache, installed via :func:`using_cache`
around the analysis calls.  ``None`` (the default) disables memoization
entirely, so library users who never touch the runner see no behavior
change.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator, Optional

_ACTIVE: Optional[Any] = None


def active_cache() -> Optional[Any]:
    """The currently installed analysis cache (or ``None``)."""
    return _ACTIVE


def set_active_cache(cache: Optional[Any]) -> Optional[Any]:
    """Install ``cache`` as the process-wide analysis cache.

    Returns the previously installed cache so callers can restore it.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = cache
    return previous


@contextlib.contextmanager
def using_cache(cache: Optional[Any]) -> Iterator[Optional[Any]]:
    """Context manager: install ``cache`` for the duration of the block."""
    previous = set_active_cache(cache)
    try:
        yield cache
    finally:
        set_active_cache(previous)


def content_key(system: Any) -> Optional[str]:
    """``system.content_digest()``, or ``None`` when the system cannot
    be canonically serialized (e.g. user-defined event models) — callers
    must then bypass the cache rather than risk key collisions."""
    try:
        return system.content_digest()
    except TypeError:
        return None
