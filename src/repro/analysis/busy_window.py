"""The q-event busy time of a chain (Theorem 1 / Eq. 1, 3 and 4).

``B_b(q)`` bounds the time needed to process ``q`` activations of chain
sigma_b inside one sigma_b-busy-window.  Theorem 1 expresses it as a fixed
point over five interference components; Eq. (3) and Eq. (4) of the paper
are variants of the same sum — Eq. (3) singles out the contribution of a
*combination* of overload active segments, Eq. (4) (``L_b(q)``) evaluates
the arrival curves over the fixed window ``delta_minus(q) + D_b`` instead
of the fixed point, yielding the linear schedulability criterion Eq. (5).

This module implements all three through one parameterized evaluator
(:class:`_InterferenceModel`) that records a per-component breakdown for
auditability.  The q-independent interference structures (interferer
lists, deferred-segment decompositions, static costs) are computed once
per model, which is what makes the batched :func:`criterion_loads` cheap:
one structure scan serves the whole ``q`` range of Eq. (5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Union

from ..kernel import numpy_or_none, solve_monotone_fixed_points
from ..model import System, TaskChain
from .exceptions import BusyWindowDivergence
from .interference import is_deferred
from .memo import active_cache, content_key
from .segments import critical_segment, header_segment, segments

#: Hard ceiling on any busy-window length; exceeding it is treated as
#: divergence (utilization at or above 1 within the relevant scope).
MAX_WINDOW = 10.0**12

#: Hard ceiling on fixed-point iterations.
MAX_ITERATIONS = 100_000


@dataclass(frozen=True)
class BusyTimeBreakdown:
    """The five components of Theorem 1 for one value of ``q``.

    ``arbitrary``, ``deferred_async`` and ``deferred_sync`` map interferer
    chain names to their contribution; ``combination`` is the summed WCET
    of overload active segments injected by Eq. (3)/(5).
    """

    q: int
    base: float
    self_interference: float
    arbitrary: Dict[str, float] = field(default_factory=dict)
    deferred_async: Dict[str, float] = field(default_factory=dict)
    deferred_sync: Dict[str, float] = field(default_factory=dict)
    combination: float = 0.0
    total: float = 0.0
    iterations: int = 0

    def interference_total(self) -> float:
        """Everything except the base demand ``q * C_b``."""
        return self.total - self.base


class _InterferenceModel:
    """The q-independent structures of the Theorem 1 sum for one
    (system, target, include_overload) configuration.

    Building the model performs the interferer classification and the
    deferred-segment scans; :meth:`evaluate` then applies the sum for
    any ``(q, horizon)`` without repeating them.  One model instance
    serves a whole fixed-point iteration — and, through
    :func:`criterion_loads`, a whole Eq. (5) ``q`` range.
    """

    def __init__(self, system: System, target: TaskChain, include_overload: bool):
        self.target = target
        self.interferers = [
            chain
            for chain in system.others(target)
            if include_overload or not chain.overload
        ]
        self.deferred = {c.name: is_deferred(c, target) for c in self.interferers}
        self.header_cost = sum(t.wcet for t in target.header_prefix())
        self.deferred_static: Dict[str, float] = {}
        self.deferred_async_headers: Dict[str, float] = {}
        for chain in self.interferers:
            if not self.deferred[chain.name]:
                continue
            if chain.is_asynchronous:
                self.deferred_async_headers[chain.name] = header_segment(
                    chain, target
                ).wcet
                self.deferred_static[chain.name] = sum(
                    seg.wcet for seg in segments(chain, target)
                )
            else:
                crit = critical_segment(chain, target)
                self.deferred_static[chain.name] = crit.wcet if crit else 0.0

    def evaluate(
        self,
        q: int,
        horizon: float,
        combination_cost: float = 0.0,
        base_demand: Optional[float] = None,
    ) -> BusyTimeBreakdown:
        """One application of the Theorem 1 sum at window ``horizon``."""
        target = self.target
        base = q * target.total_wcet if base_demand is None else base_demand
        arbitrary: Dict[str, float] = {}
        deferred_async: Dict[str, float] = {}
        deferred_sync: Dict[str, float] = {}
        self_interference = 0.0
        if target.is_asynchronous and self.header_cost > 0:
            backlog = max(0, target.activation.eta_plus(horizon) - q)
            self_interference = backlog * self.header_cost
        for chain in self.interferers:
            if not self.deferred[chain.name]:
                arbitrary[chain.name] = (
                    chain.activation.eta_plus(horizon) * chain.total_wcet
                )
            elif chain.is_asynchronous:
                deferred_async[chain.name] = (
                    chain.activation.eta_plus(horizon)
                    * self.deferred_async_headers[chain.name]
                    + self.deferred_static[chain.name]
                )
            else:
                deferred_sync[chain.name] = self.deferred_static[chain.name]
        total = (
            base
            + self_interference
            + sum(arbitrary.values())
            + sum(deferred_async.values())
            + sum(deferred_sync.values())
            + combination_cost
        )
        return BusyTimeBreakdown(
            q=q,
            base=base,
            self_interference=self_interference,
            arbitrary=arbitrary,
            deferred_async=deferred_async,
            deferred_sync=deferred_sync,
            combination=combination_cost,
            total=total,
        )

    def totals_many(
        self,
        qs: Sequence[int],
        horizons: Sequence[float],
        combination_cost: float = 0.0,
    ) -> Sequence[float]:
        """Theorem 1 totals for many ``(q, horizon)`` pairs at once.

        Under the numpy kernel every arrival curve is evaluated once
        over the whole horizon vector (one ``searchsorted`` per chain
        instead of one scalar probe per ``q`` per Kleene step), and the
        five components are accumulated in exactly the order of
        :meth:`evaluate`, so the totals are value-identical.  Under the
        pure-Python kernel it simply loops :meth:`evaluate` — the
        differential reference of the kernel parity tests.
        """
        np = numpy_or_none()
        if np is None:
            return [
                self.evaluate(q, horizon, combination_cost).total
                for q, horizon in zip(qs, horizons)
            ]
        target = self.target
        q_arr = np.asarray(qs, dtype=np.int64)
        h_arr = np.asarray(horizons, dtype=np.float64)
        total = q_arr * float(target.total_wcet)
        if target.is_asynchronous and self.header_cost > 0:
            backlog = target.activation.eta_plus_many(h_arr) - q_arr
            total = total + np.maximum(backlog, 0) * float(self.header_cost)
        arbitrary_sum = 0.0
        async_sum = 0.0
        sync_sum = 0.0
        for chain in self.interferers:
            if not self.deferred[chain.name]:
                arbitrary_sum = arbitrary_sum + chain.activation.eta_plus_many(
                    h_arr
                ) * float(chain.total_wcet)
            elif chain.is_asynchronous:
                async_sum = async_sum + (
                    chain.activation.eta_plus_many(h_arr)
                    * float(self.deferred_async_headers[chain.name])
                    + float(self.deferred_static[chain.name])
                )
            else:
                sync_sum = sync_sum + self.deferred_static[chain.name]
        total = total + arbitrary_sum + async_sum + sync_sum
        if combination_cost:
            total = total + combination_cost
        return total


def _check_membership(system: System, target: TaskChain) -> None:
    if target.name not in system or system[target.name] != target:
        raise ValueError(f"chain {target.name!r} not in system")


def _busy_key(
    digest: str,
    target: TaskChain,
    q: int,
    include_overload: bool,
    combination_cost: float,
    window: Optional[float],
    base_demand: Optional[float],
):
    """The ``busy_time`` cache-category key layout (shared by the
    single-q and the batched evaluation paths)."""
    return (
        digest,
        target.name,
        q,
        include_overload,
        combination_cost,
        window,
        base_demand,
    )


def _warm_start_horizon(
    cache,
    digest,
    target: TaskChain,
    q: int,
    include_overload: bool,
    combination_cost: float,
    horizon: float,
) -> float:
    """Raise ``horizon`` to the best sound cached lower bound at hand.

    Two warm starts the cache may already hold: the fixed point of
    ``q - 1`` in the same configuration (the sum is pointwise monotone
    in ``q``), and — when overload is included — the overload-free
    fixed point of the same ``q``.  Probed via ``peek`` so warm-start
    probes never skew hit/miss accounting.  Shared by the scalar
    :func:`busy_time` and the batched block so the two paths can never
    desynchronize on key layout or soundness conditions.
    """
    peek = getattr(cache, "peek", None) if cache is not None else None
    if peek is None or digest is None:
        return horizon
    if q > 1:
        previous = peek(
            "busy_time",
            _busy_key(
                digest, target, q - 1, include_overload, combination_cost,
                None, None,
            ),
        )
        if previous is not None and previous.total > horizon:
            horizon = previous.total
    if include_overload:
        typical = peek(
            "busy_time",
            _busy_key(digest, target, q, False, combination_cost, None, None),
        )
        if typical is not None and typical.total > horizon:
            horizon = typical.total
    return horizon


def busy_time(
    system: System,
    target: TaskChain,
    q: int,
    *,
    include_overload: bool = True,
    combination_cost: float = 0.0,
    window: Optional[float] = None,
    base_demand: Optional[float] = None,
    seed: Optional[float] = None,
) -> BusyTimeBreakdown:
    """Evaluate the Theorem 1 sum for ``q`` activations of ``target``.

    Parameters
    ----------
    system, target:
        The uniprocessor system and the analyzed chain (must belong to
        ``system``).
    q:
        Number of chain activations processed in the busy window
        (``q >= 1``).
    include_overload:
        When False, overload chains are removed from every interference
        term — this is the *typical* busy time of Eq. (3)/(4), to which a
        combination's cost can be added via ``combination_cost``.
    combination_cost:
        Summed WCET of the overload active segments of a combination
        (the last line of Eq. (3)); only sensible with
        ``include_overload=False``.
    window:
        ``None`` computes the fixed point of Theorem 1.  A number
        evaluates the sum with every arrival curve applied to that fixed
        window instead — Eq. (4) uses ``delta_minus(q) + D_b``.
    base_demand:
        Override for the ``q * C_b`` base term; used by the per-stage
        latency analysis (``(q-1) * C_b + C_prefix``).
    seed:
        Warm start for the Kleene iteration.  Must be a *sound* lower
        bound on the least fixed point — e.g. the fixed point of the
        same configuration at ``q - 1`` (the sum is pointwise monotone
        in ``q``) or the overload-free fixed point of the same ``q``.
        Any seed at or below the least fixed point yields the
        bit-identical breakdown (every component of the Theorem 1 sum is
        monotone in the horizon, so the converged evaluation is unique);
        only the ``iterations`` diagnostic shrinks.  Ignored in window
        mode.

    Returns
    -------
    BusyTimeBreakdown
        With ``total`` the busy time bound and the per-chain components.
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    _check_membership(system, target)

    # Memoization: the breakdown is a pure function of system content
    # and the scalar arguments, so an installed AnalysisCache can return
    # earlier fixed points (the dominant cost of the whole TWCA).
    cache = active_cache()
    cache_key = None
    digest = None
    if cache is not None:
        digest = content_key(system)
        if digest is not None:
            cache_key = _busy_key(
                digest, target, q, include_overload, combination_cost, window,
                base_demand,
            )
            hit = cache.lookup("busy_time", cache_key)
            if hit is not None:
                return hit

    model = _InterferenceModel(system, target, include_overload)

    if window is not None:
        result = model.evaluate(q, window, combination_cost, base_demand)
        if cache_key is not None:
            cache.store("busy_time", cache_key, result)
        return result

    # Kleene iteration from the minimal demand, warm-started when a
    # sound better lower bound is at hand.  The sum is monotone in the
    # horizon, so from any start at or below the least fixed point the
    # iteration converges to exactly that fixed point — seeds change
    # the step count, never the result.
    base = q * target.total_wcet if base_demand is None else base_demand
    horizon = base if base > 0 else 1
    if seed is not None and seed > horizon:
        horizon = seed
    if cache_key is not None and base_demand is None:
        horizon = _warm_start_horizon(
            cache, digest, target, q, include_overload, combination_cost,
            horizon,
        )
    iterations = 0
    while True:
        try:
            current = model.evaluate(q, horizon, combination_cost, base_demand)
        except OverflowError as exc:
            # An arrival curve refused a huge window: the fixed point is
            # running away, which is a divergence, not a curve bug.
            raise BusyWindowDivergence(target.name, q, str(exc)) from exc
        iterations += 1
        if current.total <= horizon:
            break
        if current.total > MAX_WINDOW:
            raise BusyWindowDivergence(
                target.name, q, f"busy time exceeded {MAX_WINDOW:g} time units"
            )
        if iterations > MAX_ITERATIONS:
            raise BusyWindowDivergence(
                target.name, q, f"no fixed point after {iterations} steps"
            )
        horizon = current.total
    result = BusyTimeBreakdown(
        q=current.q,
        base=current.base,
        self_interference=current.self_interference,
        arbitrary=current.arbitrary,
        deferred_async=current.deferred_async,
        deferred_sync=current.deferred_sync,
        combination=current.combination,
        total=current.total,
        iterations=iterations,
    )
    if cache_key is not None:
        cache.store("busy_time", cache_key, result)
    return result


#: Per-q outcome of a batched block: the breakdown, or the divergence
#: the equivalent scalar call would have raised.
BusyOutcome = Union[BusyTimeBreakdown, BusyWindowDivergence]


def _busy_times_block(
    system: System,
    target: TaskChain,
    qs: Sequence[int],
    *,
    include_overload: bool = True,
    combination_cost: float = 0.0,
    seeds: Optional[Mapping[int, float]] = None,
) -> Dict[int, BusyOutcome]:
    """Batched Theorem 1 fixed points with per-``q`` failure capture.

    The engine behind :func:`busy_times` and the block-mode q-scan of
    :func:`repro.analysis.latency.analyze_latency`: one
    :class:`_InterferenceModel` serves every ``q``, the Kleene iteration
    advances all of them simultaneously (per-``q`` convergence masking,
    one batched curve evaluation per interferer per sweep), and a
    diverging ``q`` becomes a recorded :class:`BusyWindowDivergence`
    instead of poisoning the batch.  Cache keys, warm-start seeds and
    the converged breakdowns are exactly those of the scalar
    :func:`busy_time` — the least fixed point is unique, and the final
    breakdown is evaluated through the scalar (type-preserving) path.
    """
    _check_membership(system, target)
    order = []
    seen = set()
    for q in qs:
        if q < 1:
            raise ValueError(f"q must be >= 1, got {q}")
        if q not in seen:
            seen.add(q)
            order.append(q)
    cache = active_cache()
    digest = content_key(system) if cache is not None else None
    outcomes: Dict[int, BusyOutcome] = {}
    pending = []
    for q in order:
        if digest is not None:
            hit = cache.lookup(
                "busy_time",
                _busy_key(
                    digest, target, q, include_overload, combination_cost,
                    None, None,
                ),
            )
            if hit is not None:
                outcomes[q] = hit
                continue
        pending.append(q)
    if not pending:
        return outcomes

    model = _InterferenceModel(system, target, include_overload)
    starts = []
    for q in pending:
        base = q * target.total_wcet
        horizon = base if base > 0 else 1
        seed = None if seeds is None else seeds.get(q)
        if seed is not None and seed > horizon:
            horizon = seed
        starts.append(
            _warm_start_horizon(
                cache, digest, target, q, include_overload, combination_cost,
                horizon,
            )
        )

    def totals_many(indices, horizons):
        return model.totals_many(
            [pending[i] for i in indices], horizons, combination_cost
        )

    def totals_one(index, horizon):
        return model.evaluate(pending[index], horizon, combination_cost).total

    values, iterations, failures = solve_monotone_fixed_points(
        starts,
        totals_many,
        totals_one,
        max_window=MAX_WINDOW,
        max_iterations=MAX_ITERATIONS,
    )
    for q, value, iters, failure in zip(pending, values, iterations, failures):
        if failure is not None:
            if failure == "window":
                message = f"busy time exceeded {MAX_WINDOW:g} time units"
            elif failure == "iterations":
                message = f"no fixed point after {iters} steps"
            else:
                message = failure[len("overflow: "):]
            outcomes[q] = BusyWindowDivergence(target.name, q, message)
            continue
        final = model.evaluate(q, value, combination_cost)
        breakdown = BusyTimeBreakdown(
            q=final.q,
            base=final.base,
            self_interference=final.self_interference,
            arbitrary=final.arbitrary,
            deferred_async=final.deferred_async,
            deferred_sync=final.deferred_sync,
            combination=final.combination,
            total=final.total,
            iterations=iters,
        )
        if digest is not None:
            cache.store(
                "busy_time",
                _busy_key(
                    digest, target, q, include_overload, combination_cost,
                    None, None,
                ),
                breakdown,
            )
        outcomes[q] = breakdown
    return outcomes


def busy_times(
    system: System,
    target: TaskChain,
    qs: Sequence[int],
    *,
    include_overload: bool = True,
    combination_cost: float = 0.0,
    seeds: Optional[Mapping[int, float]] = None,
) -> Dict[int, BusyTimeBreakdown]:
    """Batched :func:`busy_time` over a whole ``q`` range.

    Bit-identical to calling :func:`busy_time` per ``q`` — same cache
    keys, same converged breakdowns (``iterations`` is the one
    diagnostic allowed to differ) — but the whole range advances as one
    masked Kleene iteration over a single interference structure.
    Raises :class:`BusyWindowDivergence` for the smallest diverging
    ``q``, matching an ascending scalar loop.
    """
    outcomes = _busy_times_block(
        system,
        target,
        qs,
        include_overload=include_overload,
        combination_cost=combination_cost,
        seeds=seeds,
    )
    for q in sorted(outcomes):
        if isinstance(outcomes[q], BusyWindowDivergence):
            raise outcomes[q]
    return {q: outcomes[q] for q in qs}


def typical_busy_time(
    system: System, target: TaskChain, q: int, combination_cost: float = 0.0
) -> BusyTimeBreakdown:
    """Eq. (3): the busy time with overload chains replaced by an
    explicit combination cost (fixed-point form)."""
    return busy_time(
        system, target, q, include_overload=False, combination_cost=combination_cost
    )


def criterion_loads(
    system: System, target: TaskChain, qs: Iterable[int]
) -> Dict[int, float]:
    """Batched ``L_b(q)`` of Eq. (4) over a whole ``q`` range.

    Byte-identical to calling :func:`criterion_load` per ``q`` — same
    cache keys, same arithmetic — but the interferer classification and
    deferred-segment scans are performed once for the entire range
    instead of once per ``q``, and cached values short-circuit before
    any structure is built.
    """
    if not target.has_deadline:
        raise ValueError(f"L_b(q) needs a finite deadline for chain {target.name!r}")
    _check_membership(system, target)
    order = tuple(qs)
    cache = active_cache()
    digest = content_key(system) if cache is not None else None
    loads: Dict[int, float] = {}
    horizons: Dict[int, float] = {}
    pending = []
    for q in order:
        if q in loads or q in horizons:
            continue
        if q < 1:
            raise ValueError(f"q must be >= 1, got {q}")
        horizon = target.activation.delta_minus(q) + target.deadline
        horizons[q] = horizon
        if digest is not None:
            hit = cache.lookup(
                "busy_time", _busy_key(digest, target, q, False, 0.0, horizon, None)
            )
            if hit is not None:
                loads[q] = hit.total
                continue
        pending.append(q)
    if pending:
        model = _InterferenceModel(system, target, include_overload=False)
        for q in pending:
            result = model.evaluate(q, horizons[q])
            if digest is not None:
                cache.store(
                    "busy_time",
                    _busy_key(digest, target, q, False, 0.0, horizons[q], None),
                    result,
                )
            loads[q] = result.total
    return {q: loads[q] for q in order}


def criterion_load(system: System, target: TaskChain, q: int) -> float:
    """``L_b(q)`` of Eq. (4): the typical interference evaluated over the
    fixed window ``delta_minus_b(q) + D_b``."""
    return criterion_loads(system, target, (q,))[q]
