"""Segments, header segments, critical segments and active segments.

These structures (Defs. 3, 4, 5 and 8 of the paper) describe which parts
of a *deferred* chain sigma_a can interfere with a target chain sigma_b,
and which parts are pinned to a single sigma_b-busy-window:

* A **segment** is a maximal circular run of consecutive tasks of sigma_a
  whose priorities all exceed sigma_b's minimum priority.  Task indices
  are read modulo ``n_a`` (Def. 3), so a run may wrap from the tail task
  to the header task — modelling the back-to-back execution of the end of
  one instance and the start of the next.
* The **critical segment** (Def. 4) is the segment of maximum total WCET.
* The **header segment** w.r.t. sigma_b (Def. 5, second bullet) is the
  prefix of sigma_a up to the first task whose priority is below all of
  sigma_b's priorities.
* An **active segment** (Def. 8) is a maximal sub-run of a segment in
  which every task *after the first* has priority above sigma_b's tail
  priority; Lemma 2 shows an active segment executes within a single
  sigma_b-busy-window.  Active segments partition each segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..model import Task, TaskChain


@dataclass(frozen=True)
class Segment:
    """A contiguous (circularly contiguous for plain segments) run of
    tasks of ``chain``, identified by start index and length.

    ``tasks`` is the materialized run; ``start`` is the index of its
    first task within the chain (0-based); ``wraps`` records whether the
    run crosses the tail-to-header boundary.
    """

    chain_name: str
    start: int
    tasks: Tuple[Task, ...]
    wraps: bool = False

    @property
    def wcet(self) -> float:
        """``C_s``: total WCET of the run."""
        return sum(t.wcet for t in self.tasks)

    @property
    def task_names(self) -> Tuple[str, ...]:
        return tuple(t.name for t in self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)

    def __str__(self) -> str:
        inner = ", ".join(t.name for t in self.tasks)
        mark = "~" if self.wraps else ""
        return f"{self.chain_name}[{inner}]{mark}"


@dataclass(frozen=True)
class ActiveSegment:
    """An active segment (Def. 8): a sub-run of ``segment_index``-th
    segment guaranteed to execute within one busy window of the target
    chain (Lemma 2)."""

    chain_name: str
    segment_index: int
    start: int
    tasks: Tuple[Task, ...]

    @property
    def wcet(self) -> float:
        """Total WCET of the active segment's tasks."""
        return sum(t.wcet for t in self.tasks)

    @property
    def task_names(self) -> Tuple[str, ...]:
        return tuple(t.name for t in self.tasks)

    @property
    def key(self) -> Tuple[str, int]:
        """Stable identity used by the ILP capacity constraints."""
        return (self.chain_name, self.start)

    def __len__(self) -> int:
        return len(self.tasks)

    def __str__(self) -> str:
        inner = ", ".join(t.name for t in self.tasks)
        return f"{self.chain_name}<{inner}>"


def segments(interferer: TaskChain, target: TaskChain) -> List[Segment]:
    """All segments of ``interferer`` w.r.t. ``target`` (Def. 3).

    Maximal circular runs of tasks with priority strictly above
    ``target.min_priority``.  When *every* task qualifies the chain is
    not deferred and has no meaningful segment decomposition — we raise,
    because callers must only use segments for deferred chains.
    """
    floor = target.min_priority
    n = len(interferer)
    high = [task.priority > floor for task in interferer.tasks]
    if all(high):
        raise ValueError(
            f"chain {interferer.name!r} is not deferred by "
            f"{target.name!r}; segments are undefined"
        )
    # Rotate the walk so it starts right after a low-priority task; every
    # maximal circular run is then closed exactly once.
    first_low = high.index(False)
    result: List[Segment] = []
    run_start: Optional[int] = None
    run_length = 0
    for step in range(1, n + 1):
        index = (first_low + step) % n
        if high[index]:
            if run_start is None:
                run_start = index
                run_length = 1
            else:
                run_length += 1
        elif run_start is not None:
            tasks = tuple(
                interferer.tasks[(run_start + j) % n] for j in range(run_length)
            )
            result.append(
                Segment(
                    interferer.name,
                    run_start,
                    tasks,
                    wraps=run_start + run_length > n,
                )
            )
            run_start = None
            run_length = 0
    result.sort(key=lambda seg: seg.start)
    return result


def critical_segment(
    interferer: TaskChain, target: TaskChain
) -> Optional[Segment]:
    """The critical segment (Def. 4): the segment of maximal total WCET.
    ``None`` when the interferer has no segment (no task above the
    target's minimum priority)."""
    segs = segments(interferer, target)
    if not segs:
        return None
    return max(segs, key=lambda s: s.wcet)


def header_segment(interferer: TaskChain, target: TaskChain) -> Segment:
    """``s_header_{a,b}`` (Def. 5): the prefix of ``interferer`` up to
    (excluding) the first task whose priority is lower than all of
    ``target``'s priorities.  May be empty (zero tasks)."""
    floor = target.min_priority
    prefix: List[Task] = []
    for task in interferer.tasks:
        if task.priority < floor:
            break
        prefix.append(task)
    return Segment(interferer.name, 0, tuple(prefix), wraps=False)


def active_segments(
    interferer: TaskChain, target: TaskChain
) -> List[ActiveSegment]:
    """All active segments of ``interferer`` w.r.t. ``target`` (Def. 8).

    Each segment is partitioned into maximal sub-runs such that every
    task after the first has priority strictly above the priority of
    ``target``'s tail task.  (The first task of an active segment may
    have any priority — it only needs to belong to the segment.)
    """
    tail_priority = target.tail.priority
    result: List[ActiveSegment] = []
    n = len(interferer)
    for seg_index, seg in enumerate(segments(interferer, target)):
        current: List[Task] = []
        current_start = seg.start
        for offset, task in enumerate(seg.tasks):
            absolute = (seg.start + offset) % n
            if not current:
                current = [task]
                current_start = absolute
            elif task.priority > tail_priority:
                current.append(task)
            else:
                result.append(
                    ActiveSegment(
                        interferer.name, seg_index, current_start, tuple(current)
                    )
                )
                current = [task]
                current_start = absolute
        if current:
            result.append(
                ActiveSegment(
                    interferer.name, seg_index, current_start, tuple(current)
                )
            )
    return result
