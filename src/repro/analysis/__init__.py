"""Analyses: latency (Sec. IV) and TWCA for task chains (Sec. V)."""

from .busy_window import (
    BusyTimeBreakdown,
    busy_time,
    busy_times,
    criterion_load,
    criterion_loads,
    typical_busy_time,
)
from .certificates import (
    CertificateError,
    DmmCertificate,
    LatencyCertificate,
    check_dmm_certificate,
    check_latency_certificate,
    dmm_certificate,
    latency_certificate,
)
from .combinations import (
    Combination,
    CombinationSearchResult,
    count_combinations,
    enumerate_combinations,
    iter_combinations,
    iter_combinations_by_cost,
    overload_active_segments,
    search_combinations,
    split_by_schedulability,
)
from .dmm import DeadlineMissModel, dominates
from .exceptions import AnalysisError, BusyWindowDivergence, NotAnalyzable
from .interference import (
    deferred_chains,
    interfering_chains,
    is_arbitrarily_interfering,
    is_deferred,
)
from .latency import LatencyResult, analyze_latency
from .paths import Path, PathResult, PathStage, analyze_path, path_dmm
from .segments import (
    ActiveSegment,
    Segment,
    active_segments,
    critical_segment,
    header_segment,
    segments,
)
from .stages import StageLatencyResult, analyze_stage_latencies
from .twca import ChainTwcaResult, GuaranteeStatus, analyze_all, analyze_twca

__all__ = [
    "AnalysisError",
    "BusyWindowDivergence",
    "NotAnalyzable",
    "is_deferred",
    "is_arbitrarily_interfering",
    "deferred_chains",
    "interfering_chains",
    "Segment",
    "ActiveSegment",
    "segments",
    "critical_segment",
    "header_segment",
    "active_segments",
    "BusyTimeBreakdown",
    "busy_time",
    "busy_times",
    "typical_busy_time",
    "criterion_load",
    "criterion_loads",
    "LatencyResult",
    "analyze_latency",
    "Combination",
    "CombinationSearchResult",
    "overload_active_segments",
    "count_combinations",
    "enumerate_combinations",
    "iter_combinations",
    "iter_combinations_by_cost",
    "search_combinations",
    "split_by_schedulability",
    "GuaranteeStatus",
    "ChainTwcaResult",
    "analyze_twca",
    "analyze_all",
    "DeadlineMissModel",
    "dominates",
    "Path",
    "PathStage",
    "PathResult",
    "analyze_path",
    "path_dmm",
    "CertificateError",
    "LatencyCertificate",
    "DmmCertificate",
    "latency_certificate",
    "check_latency_certificate",
    "dmm_certificate",
    "check_dmm_certificate",
    "StageLatencyResult",
    "analyze_stage_latencies",
]
