"""Interference classification between chains (Def. 2).

Given two chains on the same SPP processor, the interference of sigma_a on
sigma_b takes one of two shapes:

* *deferred* — some task of sigma_a has lower priority than **all** tasks
  of sigma_b.  Every instance of sigma_a must eventually execute such a
  low-priority task, which cannot run while sigma_b is pending, so
  sigma_a's interference is confined to its *segments* (see
  :mod:`repro.analysis.segments`).
* *arbitrarily interfering* — otherwise.  Every activation of sigma_a may
  execute entirely before sigma_b resumes.
"""

from __future__ import annotations

from typing import Tuple

from ..model import System, TaskChain


def is_deferred(interferer: TaskChain, target: TaskChain) -> bool:
    """True iff ``interferer`` is deferred by ``target`` (Def. 2):
    some task of ``interferer`` has lower priority than every task of
    ``target``."""
    floor = target.min_priority
    return any(task.priority < floor for task in interferer.tasks)


def is_arbitrarily_interfering(interferer: TaskChain, target: TaskChain) -> bool:
    """True iff ``interferer`` arbitrarily interferes with ``target``
    (the complement of :func:`is_deferred`)."""
    return not is_deferred(interferer, target)


def deferred_chains(system: System, target: TaskChain) -> Tuple[TaskChain, ...]:
    """``DC(b)``: all chains of ``system`` deferred by ``target``
    (excluding ``target`` itself)."""
    return tuple(
        chain for chain in system.others(target) if is_deferred(chain, target)
    )


def interfering_chains(system: System, target: TaskChain) -> Tuple[TaskChain, ...]:
    """``IC(b)``: all chains of ``system`` arbitrarily interfering with
    ``target`` (excluding ``target`` itself)."""
    return tuple(
        chain for chain in system.others(target) if not is_deferred(chain, target)
    )
