"""Exceptions raised by the analyses."""

from __future__ import annotations


class AnalysisError(Exception):
    """Base class for analysis failures."""


class BusyWindowDivergence(AnalysisError):
    """The busy-window fixed point did not converge.

    Raised when the load on the analyzed priority scope is at or above
    the processor capacity, so the maximal busy window is unbounded and
    no latency guarantee exists.
    """

    def __init__(self, chain_name: str, q: int, detail: str = ""):
        self.chain_name = chain_name
        self.q = q
        message = f"busy window of chain {chain_name!r} diverges at q={q}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class NotAnalyzable(AnalysisError):
    """The requested analysis is undefined for the given input (e.g. a
    DMM for a chain without a finite deadline)."""
