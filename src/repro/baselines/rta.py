"""Classic busy-window response-time analysis for *independent* tasks.

The substrate the paper's references [8]/[10] build on: uniprocessor SPP,
independent tasks with arrival curves.  Needed here as the foundation of
the independent-task TWCA baseline and as a sanity oracle for single-task
chains (for a chain of one task, Theorem 1 degenerates to this).

The multi-event scan of :func:`analyze_response_time` shares the numeric
kernel of the chain analysis: the whole ``q`` block advances as one
masked Kleene iteration (:func:`repro.kernel.solve_monotone_fixed_points`)
with each interferer's curve evaluated through the batched
``eta_plus_many`` staircase kernel, replacing the historic copy of the
one-``q``-at-a-time fixed-point loop.  :func:`busy_time` remains the
scalar reference; both produce bit-identical busy times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..arrivals import EventModel
from ..kernel import numpy_or_none, solve_monotone_fixed_points

#: Iteration / queue-depth guards (mirroring repro.analysis.busy_window).
MAX_WINDOW = 10.0**12
MAX_Q = 65_536

#: Largest q-block advanced per batched Kleene call of the queue scan
#: (grown 1, 1, 2, 4, ... exactly like the chain-latency scan).
MAX_BLOCK = 64


@dataclass(frozen=True)
class AnalyzedTask:
    """A self-contained independent task for the baseline analyses."""

    name: str
    priority: float
    wcet: float
    activation: EventModel
    deadline: float = math.inf


@dataclass(frozen=True)
class ResponseTimeResult:
    """Busy-window analysis output for one task."""

    task_name: str
    busy_times: Tuple[float, ...]
    response_times: Tuple[float, ...]
    max_queue: int
    wcrt: float

    def deadline_miss_count(self, deadline: float) -> int:
        """How many positions in the maximal busy window can miss."""
        return sum(1 for r in self.response_times if r > deadline)


def _higher_priority(
    tasks: Sequence[AnalyzedTask], target: AnalyzedTask
) -> List[AnalyzedTask]:
    return [
        t for t in tasks if t.name != target.name and t.priority > target.priority
    ]


def _demand(
    higher: Sequence[AnalyzedTask],
    target: AnalyzedTask,
    q: int,
    horizon: float,
    extra_load: float,
) -> float:
    return (
        q * target.wcet
        + extra_load
        + sum(t.activation.eta_plus(horizon) * t.wcet for t in higher)
    )


def _demands_many(
    higher: Sequence[AnalyzedTask],
    target: AnalyzedTask,
    qs: Sequence[int],
    horizons: Sequence[float],
    extra_load: float,
) -> Sequence[float]:
    """The demand of many ``(q, horizon)`` pairs at once, accumulated in
    the order of :func:`_demand` — value-identical either way."""
    np = numpy_or_none()
    if np is None:
        return [
            _demand(higher, target, q, horizon, extra_load)
            for q, horizon in zip(qs, horizons)
        ]
    h_arr = np.asarray(horizons, dtype=np.float64)
    total = np.asarray(qs, dtype=np.int64) * float(target.wcet)
    if extra_load:
        total = total + extra_load
    interference = 0.0
    for t in higher:
        interference = interference + t.activation.eta_plus_many(h_arr) * float(
            t.wcet
        )
    return total + interference


def busy_time(
    tasks: Sequence[AnalyzedTask],
    target: AnalyzedTask,
    q: int,
    *,
    window: Optional[float] = None,
    extra_load: float = 0.0,
) -> float:
    """``B_i(q)``: fixed point of ``q C_i + sum_hp eta_j(B) C_j``.

    ``window`` evaluates at a fixed horizon instead (the L(q) analogue);
    ``extra_load`` injects a constant demand (combination cost).
    """
    higher = _higher_priority(tasks, target)
    if window is not None:
        return _demand(higher, target, q, window, extra_load)
    horizon = max(q * target.wcet + extra_load, 1.0)
    for _ in range(100_000):
        value = _demand(higher, target, q, horizon, extra_load)
        if value <= horizon:
            return value
        if value > MAX_WINDOW:
            raise OverflowError(f"busy window of {target.name!r} diverges")
        horizon = value
    raise OverflowError(f"no fixed point for {target.name!r}")


def analyze_response_time(
    tasks: Sequence[AnalyzedTask], target: AnalyzedTask
) -> ResponseTimeResult:
    """Multi-event busy-window WCRT analysis (Lehoczky / CPA style).

    Bit-identical to iterating :func:`busy_time` per ``q`` (the least
    fixed point is unique), but whole ``q`` blocks advance together
    through one batched curve evaluation per interferer per sweep.
    """
    higher = _higher_priority(tasks, target)
    busy: List[float] = []
    responses: List[float] = []
    q = 0
    block = 1
    while True:
        if q >= MAX_Q:
            raise OverflowError(f"busy window of {target.name!r} never closes")
        qs = list(range(q + 1, min(q + block, MAX_Q) + 1))
        if busy:
            block = min(block * 2, MAX_BLOCK)
        seeds = [max(qq * target.wcet, 1.0) for qq in qs]
        values, _, failures = solve_monotone_fixed_points(
            seeds,
            lambda idx, hs: _demands_many(
                higher, target, [qs[i] for i in idx], hs, 0.0
            ),
            lambda i, h: _demand(higher, target, qs[i], h, 0.0),
            max_window=MAX_WINDOW,
            max_iterations=100_000,
        )
        closed = False
        for qq, value, failure in zip(qs, values, failures):
            if failure == "window":
                raise OverflowError(f"busy window of {target.name!r} diverges")
            if failure is not None:
                raise OverflowError(f"no fixed point for {target.name!r}")
            busy.append(value)
            responses.append(value - target.activation.delta_minus(qq))
            q = qq
            if value <= target.activation.delta_minus(qq + 1):
                closed = True
                break
        if closed:
            break
    wcrt = max(responses)
    return ResponseTimeResult(
        task_name=target.name,
        busy_times=tuple(busy),
        response_times=tuple(responses),
        max_queue=q,
        wcrt=wcrt,
    )


def response_times(tasks: Sequence[AnalyzedTask]) -> dict:
    """WCRT of every task in the set (name -> result)."""
    return {t.name: analyze_response_time(tasks, t) for t in tasks}
