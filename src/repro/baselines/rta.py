"""Classic busy-window response-time analysis for *independent* tasks.

The substrate the paper's references [8]/[10] build on: uniprocessor SPP,
independent tasks with arrival curves.  Needed here as the foundation of
the independent-task TWCA baseline and as a sanity oracle for single-task
chains (for a chain of one task, Theorem 1 degenerates to this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..arrivals import EventModel

#: Iteration / queue-depth guards (mirroring repro.analysis.busy_window).
MAX_WINDOW = 10.0**12
MAX_Q = 65_536


@dataclass(frozen=True)
class AnalyzedTask:
    """A self-contained independent task for the baseline analyses."""

    name: str
    priority: float
    wcet: float
    activation: EventModel
    deadline: float = math.inf


@dataclass(frozen=True)
class ResponseTimeResult:
    """Busy-window analysis output for one task."""

    task_name: str
    busy_times: Tuple[float, ...]
    response_times: Tuple[float, ...]
    max_queue: int
    wcrt: float

    def deadline_miss_count(self, deadline: float) -> int:
        """How many positions in the maximal busy window can miss."""
        return sum(1 for r in self.response_times if r > deadline)


def busy_time(tasks: Sequence[AnalyzedTask], target: AnalyzedTask,
              q: int, *, window: Optional[float] = None,
              extra_load: float = 0.0) -> float:
    """``B_i(q)``: fixed point of ``q C_i + sum_hp eta_j(B) C_j``.

    ``window`` evaluates at a fixed horizon instead (the L(q) analogue);
    ``extra_load`` injects a constant demand (combination cost).
    """
    higher = [t for t in tasks
              if t.name != target.name and t.priority > target.priority]

    def demand(horizon: float) -> float:
        return (q * target.wcet + extra_load
                + sum(t.activation.eta_plus(horizon) * t.wcet
                      for t in higher))

    if window is not None:
        return demand(window)
    horizon = max(q * target.wcet + extra_load, 1.0)
    for _ in range(100_000):
        value = demand(horizon)
        if value <= horizon:
            return value
        if value > MAX_WINDOW:
            raise OverflowError(
                f"busy window of {target.name!r} diverges")
        horizon = value
    raise OverflowError(f"no fixed point for {target.name!r}")


def analyze_response_time(tasks: Sequence[AnalyzedTask],
                          target: AnalyzedTask) -> ResponseTimeResult:
    """Multi-event busy-window WCRT analysis (Lehoczky / CPA style)."""
    busy: List[float] = []
    responses: List[float] = []
    q = 0
    while True:
        q += 1
        if q > MAX_Q:
            raise OverflowError(
                f"busy window of {target.name!r} never closes")
        b = busy_time(tasks, target, q)
        busy.append(b)
        responses.append(b - target.activation.delta_minus(q))
        if b <= target.activation.delta_minus(q + 1):
            break
    wcrt = max(responses)
    return ResponseTimeResult(
        task_name=target.name, busy_times=tuple(busy),
        response_times=tuple(responses), max_queue=q, wcrt=wcrt)


def response_times(tasks: Sequence[AnalyzedTask]
                   ) -> dict:
    """WCRT of every task in the set (name -> result)."""
    return {t.name: analyze_response_time(tasks, t) for t in tasks}
