"""Independent-task TWCA (the state of the art the paper extends).

Reimplements the deadline-miss-model computation of Xu et al.,
ECRTS 2015 [10] for systems of *independent* tasks: combinations are
subsets of overload tasks, one overload activation hits one busy window,
and the DMM is the same packing ILP as Theorem 3 with tasks in place of
active segments.

Internally each task is wrapped into a single-task chain and fed to the
chain analysis — for chains of length one the two theories coincide, so
this adapter is simultaneously the baseline implementation and a
consistency check of the generalization.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from ..analysis.twca import ChainTwcaResult, analyze_twca
from ..model import ChainKind, System, Task, TaskChain
from .rta import AnalyzedTask


def tasks_to_system(
    tasks: Sequence[AnalyzedTask],
    overload_names: Sequence[str],
    name: str = "independent-tasks",
) -> System:
    """Wrap independent tasks into a system of single-task chains."""
    overload = set(overload_names)
    unknown = overload.difference(t.name for t in tasks)
    if unknown:
        raise ValueError(f"unknown overload tasks: {sorted(unknown)}")
    chains = []
    for task in tasks:
        chains.append(
            TaskChain(
                name=f"chain[{task.name}]",
                tasks=[Task(task.name, task.priority, task.wcet)],
                activation=task.activation,
                deadline=task.deadline,
                kind=ChainKind.SYNCHRONOUS,
                overload=task.name in overload,
            )
        )
    return System(chains, name=name)


def analyze_task_twca(
    tasks: Sequence[AnalyzedTask],
    target_name: str,
    overload_names: Sequence[str],
    backend: str = "branch_bound",
) -> ChainTwcaResult:
    """Independent-task TWCA for ``target_name`` (Xu et al. [10]).

    Returns the same result object as the chain analysis; ``dmm(k)`` is
    the deadline miss model.
    """
    system = tasks_to_system(tasks, overload_names)
    return analyze_twca(system, system[f"chain[{target_name}]"], backend=backend)


def analyze_all_task_twca(
    tasks: Sequence[AnalyzedTask],
    overload_names: Sequence[str],
    backend: str = "branch_bound",
) -> Dict[str, ChainTwcaResult]:
    """DMMs for every non-overload task with a finite deadline."""
    overload = set(overload_names)
    results: Dict[str, ChainTwcaResult] = {}
    for task in tasks:
        if task.name in overload or math.isinf(task.deadline):
            continue
        results[task.name] = analyze_task_twca(
            tasks, task.name, overload_names, backend=backend
        )
    return results
