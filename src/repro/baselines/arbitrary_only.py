"""Ablation baseline: latency analysis without the segment machinery.

Treats *every* interfering chain as arbitrarily interfering — i.e. drops
the deferred-chain case distinction of Theorem 1 (lines 4 and 5) and
charges ``eta_plus(B) * C_a`` for all of them.  Sound but pessimistic;
the gap to :func:`repro.analysis.analyze_latency` measures the value of
the segment analysis (ablation A1 in DESIGN.md).  Kept deliberately as
the simple one-``q``-at-a-time scalar loop: it is an ablation
*reference*, not a hot path.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.busy_window import MAX_ITERATIONS, MAX_WINDOW, BusyTimeBreakdown
from ..analysis.exceptions import BusyWindowDivergence
from ..analysis.latency import MAX_Q, LatencyResult
from ..model import System, TaskChain


def busy_time_arbitrary(
    system: System, target: TaskChain, q: int, *, include_overload: bool = True
) -> BusyTimeBreakdown:
    """Theorem 1 with every interferer treated as arbitrary."""
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    interferers = [
        chain
        for chain in system.others(target)
        if include_overload or not chain.overload
    ]
    base = q * target.total_wcet
    header_cost = sum(t.wcet for t in target.header_prefix())

    def evaluate(horizon: float) -> BusyTimeBreakdown:
        self_interference = 0.0
        if target.is_asynchronous and header_cost > 0:
            backlog = max(0, target.activation.eta_plus(horizon) - q)
            self_interference = backlog * header_cost
        arbitrary = {
            chain.name: chain.activation.eta_plus(horizon) * chain.total_wcet
            for chain in interferers
        }
        total = base + self_interference + sum(arbitrary.values())
        return BusyTimeBreakdown(
            q=q,
            base=base,
            self_interference=self_interference,
            arbitrary=arbitrary,
            total=total,
        )

    horizon = base if base > 0 else 1
    iterations = 0
    while True:
        current = evaluate(horizon)
        iterations += 1
        if current.total <= horizon:
            return current
        if current.total > MAX_WINDOW or iterations > MAX_ITERATIONS:
            raise BusyWindowDivergence(
                target.name, q, "arbitrary-only analysis diverged"
            )
        horizon = current.total


def analyze_latency_arbitrary(
    system: System,
    target: TaskChain,
    *,
    include_overload: bool = True,
    max_q: int = MAX_Q,
) -> LatencyResult:
    """Theorem 2 on top of the arbitrary-only busy time."""
    busy: List[BusyTimeBreakdown] = []
    latencies: List[float] = []
    q = 0
    while True:
        q += 1
        if q > max_q:
            raise BusyWindowDivergence(
                target.name, q, "no busy-window closure (arbitrary-only)"
            )
        breakdown = busy_time_arbitrary(
            system, target, q, include_overload=include_overload
        )
        busy.append(breakdown)
        latencies.append(breakdown.total - target.activation.delta_minus(q))
        if breakdown.total <= target.activation.delta_minus(q + 1):
            break
    wcl = max(latencies)
    return LatencyResult(
        chain_name=target.name,
        busy_times=tuple(busy),
        latencies=tuple(latencies),
        max_queue=q,
        wcl=wcl,
        critical_q=latencies.index(wcl) + 1,
        include_overload=include_overload,
    )


def pessimism_ratio(system: System, target: TaskChain) -> Optional[float]:
    """``WCL_arbitrary / WCL_segment_aware`` for one chain; ``None`` when
    either analysis diverges.  >= 1 by construction."""
    from ..analysis.latency import analyze_latency

    try:
        aware = analyze_latency(system, target)
        blunt = analyze_latency_arbitrary(system, target)
    except BusyWindowDivergence:
        return None
    if aware.wcl <= 0:
        return None
    return blunt.wcl / aware.wcl
