"""Naive baseline: collapse chains to single tasks.

Before the paper, the only way to get weakly-hard guarantees for a chain
was to ignore the dependency structure and fall back to independent-task
TWCA.  The *sound* collapse is direction-dependent: when analyzing chain
X, X itself must be modelled at its **minimum** priority (any of its
tasks can be stalled at that level) while every other chain must be
modelled at its **maximum** priority (any of its tasks might preempt X).
Anything less pessimistic can miss real interference.

This throws away exactly the structure Sec. IV exploits (segments
confining deferred interference), so its latencies and DMMs are never
tighter than the chain-aware analysis — the gap is quantified in
``benchmarks/bench_ablation_segments.py``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..analysis.twca import ChainTwcaResult
from ..model import System
from .rta import AnalyzedTask
from .twca_tasks import analyze_task_twca


def collapse_system(system: System, target_name: str = None) -> List[AnalyzedTask]:
    """One :class:`AnalyzedTask` per chain: summed WCET; the target
    chain (if given) at its minimum priority, all others at their
    maximum priority — the sound pessimistic collapse for analyzing
    ``target_name``."""
    tasks = []
    for chain in system.chains:
        if target_name is not None and chain.name == target_name:
            priority = chain.min_priority
        else:
            priority = chain.max_priority
        tasks.append(
            AnalyzedTask(
                name=chain.name,
                priority=priority,
                wcet=chain.total_wcet,
                activation=chain.activation,
                deadline=chain.deadline,
            )
        )
    return tasks


def analyze_collapsed_twca(
    system: System, chain_name: str, backend: str = "branch_bound"
) -> ChainTwcaResult:
    """TWCA of ``chain_name`` in its collapsed (chain-as-task) view."""
    tasks = collapse_system(system, target_name=chain_name)
    overload = [c.name for c in system.overload_chains]
    return analyze_task_twca(tasks, chain_name, overload, backend=backend)


def collapsed_dmm_table(
    system: System, chain_name: str, ks: Sequence[int]
) -> Dict[int, int]:
    """Convenience: the collapsed baseline's DMM over several windows."""
    result = analyze_collapsed_twca(system, chain_name)
    return {k: result.dmm(k) for k in ks}
