"""Baselines and ablations: classic RTA, independent-task TWCA [10],
chain-collapsed TWCA, and arbitrary-interference-only latency."""

from .arbitrary_only import (
    analyze_latency_arbitrary,
    busy_time_arbitrary,
    pessimism_ratio,
)
from .chain_as_task import (
    analyze_collapsed_twca,
    collapse_system,
    collapsed_dmm_table,
)
from .rta import (
    AnalyzedTask,
    ResponseTimeResult,
    analyze_response_time,
    response_times,
)
from .twca_tasks import analyze_all_task_twca, analyze_task_twca, tasks_to_system

__all__ = [
    "AnalyzedTask",
    "ResponseTimeResult",
    "analyze_response_time",
    "response_times",
    "tasks_to_system",
    "analyze_task_twca",
    "analyze_all_task_twca",
    "collapse_system",
    "analyze_collapsed_twca",
    "collapsed_dmm_table",
    "busy_time_arbitrary",
    "analyze_latency_arbitrary",
    "pessimism_ratio",
]
