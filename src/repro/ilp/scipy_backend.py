"""ILP backend delegating to :func:`scipy.optimize.milp` (HiGHS).

Used for cross-checking the hand-rolled branch-and-bound solver in tests
and ablation benchmarks.  The library works without it (see
:mod:`repro.ilp.branch_bound`); import errors surface lazily.
"""

from __future__ import annotations

import math

from .model import IntegerProgram, Solution, empty_solution


def scipy_available() -> bool:
    """True when scipy.optimize.milp can be imported."""
    try:
        from scipy.optimize import milp  # noqa: F401
    except Exception:  # pragma: no cover - environment-specific
        return False
    return True


def solve_scipy(program: IntegerProgram) -> Solution:
    """Solve ``program`` exactly with HiGHS via scipy."""
    import numpy as np
    from scipy.optimize import Bounds, LinearConstraint, milp

    n = program.num_variables
    if n == 0:
        return empty_solution()
    c = -np.asarray(program.objective, dtype=float)  # milp minimizes
    upper = []
    for i in range(n):
        ub = program.variable_bound(i)
        if math.isinf(ub) and program.objective[i] > 0:
            return Solution("unbounded", math.inf, (), 0)
        upper.append(np.inf if math.isinf(ub) else math.floor(ub + 1e-9))
    constraints = []
    if program.rows:
        constraints.append(
            LinearConstraint(
                np.asarray(program.rows, dtype=float),
                ub=np.asarray(program.rhs, dtype=float),
            )
        )
    result = milp(
        c=c,
        constraints=constraints,
        integrality=np.ones(n),
        bounds=Bounds(lb=np.zeros(n), ub=np.asarray(upper, dtype=float)),
    )
    if not result.success:
        status = "infeasible" if result.status == 2 else "error"
        return Solution(status, 0.0, (), 0)
    values = tuple(float(round(v)) for v in result.x)
    return Solution(
        "optimal",
        program.objective_value(values),
        values,
        work=int(getattr(result, "mip_node_count", 0) or 0),
    )
