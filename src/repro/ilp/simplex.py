"""Dense two-phase primal simplex for small LPs.

This is the LP-relaxation engine behind the exact branch-and-bound ILP
solver.  It is written for clarity and robustness on the small programs
produced by Theorem 3 (tens of variables / rows), not for scale:

* dense tableau representation;
* Bland's anti-cycling pivot rule;
* two phases, so right-hand sides of any sign are accepted.

Problem shape: ``maximize c . x  subject to  A x <= b,  x >= 0``.
Variable upper bounds must be encoded as explicit rows by the caller.

The tableau itself is kernel-switched (see :mod:`repro.kernel`): under
the numpy kernel it is one dense ``float64`` ndarray and every pivot row
update, reduced-cost accumulation and basis-inverse product is a single
vectorized expression; under the pure-Python kernel it is the historic
list-of-lists reference.  The two backends run the identical
elementwise float64 arithmetic and all pivot *selection* (Bland's rule,
the ratio tests) runs on identical Python floats, so pivot sequences —
and therefore results — are bit-identical.

Besides the one-shot :func:`solve_lp`, the module offers
:class:`IncrementalLp`: a persistent tableau for *rhs-only* re-solves of
the same matrix.  The slack columns of an optimal tableau hold the basis
inverse, so a new rhs is installed by one matrix-vector product
(``B^-1 b``), the previous basis stays dual feasible (reduced costs do
not depend on the rhs), and a few dual-simplex pivots restore primal
feasibility.  This is what makes the branch-and-bound node relaxations
and the packing engine's growing ``Omega`` capacities near-free; every
doubtful outcome falls back to a cold two-phase solve, so results are
always identical to :func:`solve_lp`.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..kernel import numpy_or_none

#: Numerical tolerance for pivoting / optimality tests.
EPSILON = 1e-9

#: Pivot budget shared by the phases (a safety valve, not a tuning knob).
MAX_PIVOTS = 50_000

#: Absolute slack granted per unit of objective magnitude when a warm
#: answer is re-proved against the original data (see
#: :meth:`IncrementalLp._certified`).  Far below the branch-and-bound
#: integrality tolerance, so a certified bound can never floor to the
#: wrong integer.
CERTIFICATE_TOL = 1e-9


class SimplexResult:
    """Outcome of an LP solve."""

    __slots__ = ("status", "objective", "values", "pivots")

    def __init__(
        self, status: str, objective: float, values: Tuple[float, ...], pivots: int
    ):
        self.status = status
        self.objective = objective
        self.values = values
        self.pivots = pivots

    def __repr__(self) -> str:
        return f"SimplexResult(status={self.status!r}, objective={self.objective!r})"


class _Tableau:
    """Standard-form dense tableau with the shared pivot machinery.

    Storage is selected at construction from the active kernel: a
    ``float64`` ndarray (vectorized row operations) or a list of lists
    (the pure-Python reference).  Rows are materialized as Python float
    lists for the selection loops either way, which is what keeps the
    two backends' pivot sequences bit-identical.
    """

    def __init__(
        self,
        objective: Sequence[float],
        rows: Sequence[Sequence[float]],
        rhs: Sequence[float],
    ):
        self.num_vars = len(objective)
        self.num_rows = len(rows)
        self.objective = objective
        total = self.num_vars + self.num_rows
        built: List[List[float]] = []
        self.basis: List[int] = []
        self.artificial_cols: List[int] = []
        self.pivots = 0

        for i in range(self.num_rows):
            row = [float(v) for v in rows[i]] + [0.0] * self.num_rows + [0.0]
            row[self.num_vars + i] = 1.0
            row[-1] = float(rhs[i])
            if row[-1] < 0:
                row = [-v for v in row]
            built.append(row)

        # Decide the starting basis: slack when its coefficient stayed
        # +1, otherwise an artificial column appended on the fly.
        for i in range(self.num_rows):
            if built[i][self.num_vars + i] == 1.0:
                self.basis.append(self.num_vars + i)
            else:
                column = total + len(self.artificial_cols)
                self.artificial_cols.append(column)
                for j, row in enumerate(built):
                    row.insert(-1, 1.0 if j == i else 0.0)
                self.basis.append(column)
        self.width = total + len(self.artificial_cols)

        self._np = numpy_or_none()
        if self._np is None:
            self.rows: Optional[List[List[float]]] = built
            self._matrix = None
        else:
            self.rows = None
            # The explicit reshape keeps zero-row programs 2-D.
            self._matrix = self._np.array(built, dtype=self._np.float64).reshape(
                self.num_rows, self.width + 1
            )

    # ------------------------------------------------------------------
    # Storage accessors (Python floats for the selection loops)
    # ------------------------------------------------------------------
    def _row_values(self, i: int) -> List[float]:
        if self._matrix is None:
            return self.rows[i]
        return self._matrix[i].tolist()

    def _column_values(self, k: int) -> List[float]:
        if self._matrix is None:
            return [row[k] for row in self.rows]
        return self._matrix[:, k].tolist()

    def _rhs_values(self) -> List[float]:
        if self._matrix is None:
            return [row[-1] for row in self.rows]
        return self._matrix[:, -1].tolist()

    # ------------------------------------------------------------------
    # Row operations
    # ------------------------------------------------------------------
    def pivot(self, row_index: int, col_index: int) -> None:
        self.pivots += 1
        if self._matrix is None:
            pivot_row = self.rows[row_index]
            factor = pivot_row[col_index]
            for k in range(len(pivot_row)):
                pivot_row[k] /= factor
            for j, row in enumerate(self.rows):
                if j == row_index:
                    continue
                coeff = row[col_index]
                if abs(coeff) > EPSILON:
                    for k in range(len(row)):
                        row[k] -= coeff * pivot_row[k]
        else:
            np = self._np
            matrix = self._matrix
            matrix[row_index] /= matrix[row_index, col_index]
            column = matrix[:, col_index].copy()
            mask = np.abs(column) > EPSILON
            mask[row_index] = False
            if mask.any():
                matrix[mask] -= column[mask, None] * matrix[row_index]
        self.basis[row_index] = col_index

    def reduced_costs(self, costs: Sequence[float]) -> List[float]:
        """Reduced cost per column for a *minimization* objective."""
        if self._matrix is None:
            rc = list(costs)
            for i, b_col in enumerate(self.basis):
                cb = costs[b_col]
                if cb == 0.0:
                    continue
                row = self.rows[i]
                for k in range(self.width):
                    rc[k] -= cb * row[k]
            return rc
        np = self._np
        rc = np.array(costs, dtype=np.float64)
        for i, b_col in enumerate(self.basis):
            cb = costs[b_col]
            if cb == 0.0:
                continue
            rc -= cb * self._matrix[i, : self.width]
        return rc.tolist()

    def install_rhs(self, rhs: Sequence[float]) -> None:
        """Re-solve preparation for an rhs-only change: the slack
        columns of the tableau hold ``B^-1``, so the new basic values
        are one matrix-vector product away.  Only valid when the
        tableau was built without row negations or artificials."""
        offset = self.num_vars
        if self._matrix is None:
            for row in self.rows:
                total = 0.0
                for j in range(self.num_rows):
                    coeff = row[offset + j]
                    if coeff != 0.0:
                        total += coeff * float(rhs[j])
                row[-1] = total
            return
        np = self._np
        matrix = self._matrix
        total = np.zeros(self.num_rows, dtype=np.float64)
        for j in range(self.num_rows):
            total += matrix[:, offset + j] * float(rhs[j])
        matrix[:, -1] = total

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def run_phase(self, costs: Sequence[float]) -> str:
        """Minimize ``costs . (all columns)`` with Bland's rule.  The
        pivot budget is relative to the current counter: a long-lived
        warm tableau accumulates pivots across many re-solves."""
        budget = self.pivots + MAX_PIVOTS
        while True:
            rc = self.reduced_costs(costs)
            entering = -1
            for k in range(self.width):
                if k in self.basis:
                    continue
                if rc[k] < -EPSILON:
                    entering = k
                    break  # Bland: smallest index
            if entering < 0:
                return "optimal"
            # Ratio test (Bland ties by smallest basis index).
            column = self._column_values(entering)
            rhs = self._rhs_values()
            leaving = -1
            best_ratio = math.inf
            for i in range(self.num_rows):
                coeff = column[i]
                if coeff > EPSILON:
                    ratio = rhs[i] / coeff
                    if ratio < best_ratio - EPSILON or (
                        abs(ratio - best_ratio) <= EPSILON
                        and (leaving < 0 or self.basis[i] < self.basis[leaving])
                    ):
                        best_ratio = ratio
                        leaving = i
            if leaving < 0:
                return "unbounded"
            self.pivot(leaving, entering)
            if self.pivots > budget:
                raise RuntimeError("simplex exceeded pivot budget")

    def run_dual_phase(self, costs: Sequence[float]) -> str:
        """Dual-simplex steps until the basic solution is primal
        feasible.  Requires dual feasibility (non-negative reduced
        costs) on entry.  Returns ``"optimal"``, ``"infeasible"`` (no
        entering column for a violated row) or ``"abandoned"`` (pivot
        budget, leave the decision to a cold re-solve)."""
        budget = self.pivots + MAX_PIVOTS
        while True:
            rhs = self._rhs_values()
            leaving = -1
            worst = -EPSILON
            for i in range(self.num_rows):
                if rhs[i] < worst:
                    worst = rhs[i]
                    leaving = i
            if leaving < 0:
                return "optimal"
            rc = self.reduced_costs(costs)
            entering = -1
            best_ratio = math.inf
            leaving_row = self._row_values(leaving)
            for k in range(self.width):
                if k in self.basis:
                    continue
                coeff = leaving_row[k]
                if coeff < -EPSILON:
                    ratio = rc[k] / -coeff
                    if ratio < best_ratio - EPSILON or (
                        abs(ratio - best_ratio) <= EPSILON
                        and (entering < 0 or k < entering)
                    ):
                        best_ratio = ratio
                        entering = k
            if entering < 0:
                return "infeasible"
            self.pivot(leaving, entering)
            if self.pivots > budget:
                return "abandoned"

    def phase2_costs(self) -> List[float]:
        costs = [0.0] * self.width
        for k in range(self.num_vars):
            costs[k] = -float(self.objective[k])
        # Artificials must never re-enter: give them prohibitive cost.
        for col in self.artificial_cols:
            costs[col] = 1e18
        return costs

    def extract(self) -> SimplexResult:
        values = [0.0] * self.num_vars
        rhs = self._rhs_values()
        for i, col in enumerate(self.basis):
            if col < self.num_vars:
                values[col] = rhs[i]
        objective_value = sum(c * v for c, v in zip(self.objective, values))
        return SimplexResult("optimal", objective_value, tuple(values), self.pivots)


def _two_phase(tableau: _Tableau) -> SimplexResult:
    """Run the classic two phases on a fresh tableau."""
    if tableau.artificial_cols:
        phase1_costs = [0.0] * tableau.width
        for col in tableau.artificial_cols:
            phase1_costs[col] = 1.0
        status = tableau.run_phase(phase1_costs)
        if status == "unbounded":  # pragma: no cover - cannot happen
            raise RuntimeError("phase 1 unbounded")
        art_set = set(tableau.artificial_cols)
        rhs = tableau._rhs_values()
        infeasibility = sum(
            rhs[i] for i, col in enumerate(tableau.basis) if col in art_set
        )
        if infeasibility > 1e-7:
            return SimplexResult("infeasible", 0.0, (), tableau.pivots)
        # Pivot any artificial still in the basis out (degenerate rows).
        for i in range(tableau.num_rows):
            if tableau.basis[i] in art_set:
                row = tableau._row_values(i)
                for k in range(tableau.num_vars + tableau.num_rows):
                    if abs(row[k]) > EPSILON and k not in tableau.basis:
                        tableau.pivot(i, k)
                        break

    status = tableau.run_phase(tableau.phase2_costs())
    if status == "unbounded":
        return SimplexResult("unbounded", math.inf, (), tableau.pivots)
    return tableau.extract()


def solve_lp(
    objective: Sequence[float],
    rows: Sequence[Sequence[float]],
    rhs: Sequence[float],
) -> SimplexResult:
    """Maximize ``objective . x`` subject to ``rows @ x <= rhs, x >= 0``.

    Returns a :class:`SimplexResult` with status ``"optimal"``,
    ``"infeasible"`` or ``"unbounded"``.
    """
    num_vars = len(objective)
    num_rows = len(rows)
    if num_rows != len(rhs):
        raise ValueError("rows / rhs length mismatch")
    for row in rows:
        if len(row) != num_vars:
            raise ValueError("ragged constraint matrix")
    if num_vars == 0:
        if all(b >= -EPSILON for b in rhs):
            return SimplexResult("optimal", 0.0, (), 0)
        return SimplexResult("infeasible", 0.0, (), 0)
    return _two_phase(_Tableau(objective, rows, rhs))


class IncrementalLp:
    """Persistent simplex state for rhs-only re-solves of one matrix.

    ``maximize c . x  subject to  A x <= b,  x >= 0`` with ``A`` and
    ``c`` fixed and ``b`` supplied per :meth:`solve`.  The first solve
    (and every fallback) runs the cold two-phase path; subsequent
    solves reuse the final tableau: the new rhs is installed through the
    basis inverse and repaired with dual-simplex pivots.  Every outcome
    the warm path is not certain about — dual feasibility lost to
    roundoff, pivot budget, a claimed infeasibility — is re-derived
    cold, so the answers are exactly :func:`solve_lp`'s.

    A long-lived tableau is a product-form basis inverse: hundreds of
    accumulated pivots can leave it internally consistent yet wrong, so
    no warm ``optimal`` is *trusted* either.  Each one must present an
    optimality certificate checked against the pristine
    ``objective``/``rows`` data (:meth:`_certified`): the primal point
    must be feasible, the dual prices must be feasible, and the duality
    gap must close.  Certificates are immune to tableau drift — a
    failure triggers a cold re-solve, which also rebuilds the
    factorization, healing the state for subsequent warm solves.
    """

    def __init__(self, objective: Sequence[float], rows: Sequence[Sequence[float]]):
        self.objective = [float(c) for c in objective]
        self.rows = [list(row) for row in rows]
        for row in self.rows:
            if len(row) != len(self.objective):
                raise ValueError("ragged constraint matrix")
        self._tableau: Optional[_Tableau] = None
        #: Warm / cold solve counters (performance diagnostics).
        self.warm_solves = 0
        self.cold_solves = 0

    def _cold(self, rhs: Sequence[float]) -> SimplexResult:
        self.cold_solves += 1
        tableau = _Tableau(self.objective, self.rows, rhs)
        result = _two_phase(tableau)
        # Only an optimal, artificial-free tableau can be reused: the
        # rhs install relies on the slack columns being exactly B^-1.
        # A non-optimal outcome keeps the previously retained tableau —
        # infeasibility is a property of this rhs, not of the basis, so
        # the next rhs may still warm-start (dual pivots preserve both
        # the tableau invariant and dual feasibility).
        if result.status == "optimal" and not tableau.artificial_cols:
            self._tableau = tableau
        return result

    def _dual_values(self) -> List[float]:
        """Dual prices ``y = c_B . B^-1`` read off the retained tableau.

        With the phase-2 (minimization) costs, the reduced cost of
        slack column ``j`` is exactly the price of row ``j`` in the
        original maximization, so no extra factorization work is
        needed.  The values inherit whatever roundoff the tableau has
        accumulated — :meth:`_certified` checks them against the clean
        data, so a drifted vector simply fails to certify.
        """
        tableau = self._tableau
        reduced = tableau.reduced_costs(tableau.phase2_costs())
        offset = tableau.num_vars
        return [float(reduced[offset + j]) for j in range(tableau.num_rows)]

    def _certified(
        self, result: SimplexResult, rhs: Sequence[float], duals: Sequence[float]
    ) -> bool:
        """Prove a warm ``optimal`` against the original data.

        ``result.values`` must be primal feasible, ``duals`` must be
        dual feasible (``A^T y >= c``, ``y >= 0``) and the duality gap
        ``b . y - c . x`` must close — all measured on the pristine
        ``objective``/``rows``/``rhs``, never on the drifting tableau.
        When every check passes, weak duality brackets the true optimum
        inside ``[c . x, b . y]``, so the answer is right no matter how
        degraded the factorization is.  Pure-Python arithmetic on
        purpose: both kernels must reach bit-identical verdicts.
        """
        values = result.values
        tol = CERTIFICATE_TOL * (1.0 + abs(result.objective))
        if any(v < -tol for v in values):
            return False
        for row, cap in zip(self.rows, rhs):
            used = 0.0
            for coeff, value in zip(row, values):
                if coeff != 0.0:
                    used += coeff * value
            if used > float(cap) + tol:
                return False
        if any(y < -tol for y in duals):
            return False
        for k, price in enumerate(self.objective):
            covered = 0.0
            for y, row in zip(duals, self.rows):
                coeff = row[k]
                if coeff != 0.0:
                    covered += y * coeff
            if covered < price - tol:
                return False
        bound = sum(y * float(cap) for y, cap in zip(duals, rhs))
        return bound - result.objective <= tol

    def solve(self, rhs: Sequence[float]) -> SimplexResult:
        """Maximize against capacities ``rhs``."""
        if len(rhs) != len(self.rows):
            raise ValueError("rows / rhs length mismatch")
        if not self.objective:
            return solve_lp(self.objective, self.rows, rhs)
        tableau = self._tableau
        if tableau is None:
            return self._cold(rhs)
        tableau.install_rhs(rhs)
        costs = tableau.phase2_costs()
        status = tableau.run_dual_phase(costs)
        if status == "infeasible" or status == "abandoned":
            # "infeasible" is trustworthy in exact arithmetic but this
            # tableau has accumulated roundoff; re-derive cold.
            return self._cold(rhs)
        self.warm_solves += 1
        # Polish with the primal phase: normally zero pivots, but it
        # re-checks optimality after the dual repairs and absorbs any
        # dual-tolerance slack.
        try:
            status = tableau.run_phase(costs)
        except RuntimeError:
            return self._cold(rhs)
        if status == "unbounded":
            # An aged factorization can hallucinate unboundedness just
            # as it can a wrong optimum; drop it and re-derive cold.
            self._tableau = None
            return self._cold(rhs)
        result = tableau.extract()
        if self._certified(result, rhs, self._dual_values()):
            return result
        return self._cold(rhs)

    def solve_many(self, rhs_list: Sequence[Sequence[float]]) -> List[SimplexResult]:
        """Maximize against many capacity vectors as one batch.

        The answers equal ``[self.solve(rhs) for rhs in rhs_list]`` —
        same statuses and optima — but under the numpy kernel the warm
        tableau serves every rhs whose basis needs no repair in one
        sweep: ``B^-1 . RHS`` is computed for all columns at once
        (accumulated slack column by slack column, exactly the
        :meth:`_Tableau.install_rhs` order, so each basic-value vector
        is bit-identical to a per-rhs install), dual feasibility of the
        retained basis is certified once, and every column that lands
        primal feasible is extracted directly with zero pivots — the
        same optimality certificate the scalar warm path checks.  Only
        columns that actually need dual-simplex repair (or any doubt at
        all: no retained tableau, python kernel, lost dual
        feasibility, a failed :meth:`_certified` proof) fall back to
        :meth:`solve` one by one, in order — and the first certificate
        failure's cold fallback rebuilds the factorization for the
        columns after it.

        This is what lets branch-and-bound resolve a whole frontier of
        open-node relaxations sharing one basis per sweep.
        """
        rhs_list = [list(rhs) for rhs in rhs_list]
        for rhs in rhs_list:
            if len(rhs) != len(self.rows):
                raise ValueError("rows / rhs length mismatch")
        tableau = self._tableau
        if (
            len(rhs_list) <= 1
            or not self.objective
            or tableau is None
            or tableau._matrix is None
        ):
            return [self.solve(rhs) for rhs in rhs_list]
        np = tableau._np
        costs = tableau.phase2_costs()
        reduced = tableau.reduced_costs(costs)
        basis_set = set(tableau.basis)
        dual_ok = all(
            k in basis_set or reduced[k] >= -EPSILON for k in range(tableau.width)
        )
        if not dual_ok:
            # The retained basis lost dual feasibility to roundoff; the
            # scalar path re-derives everything cold, so do the same.
            return [self.solve(rhs) for rhs in rhs_list]
        matrix = tableau._matrix
        offset = tableau.num_vars
        basic = np.zeros((tableau.num_rows, len(rhs_list)), dtype=np.float64)
        for j in range(tableau.num_rows):
            column_rhs = np.array(
                [float(rhs[j]) for rhs in rhs_list], dtype=np.float64
            )
            basic += matrix[:, offset + j, None] * column_rhs[None, :]
        feasible = (basic >= -EPSILON).all(axis=0)
        # Pre-extract every already-feasible column under the current
        # (untouched) basis; repairs for the rest may pivot the tableau
        # afterwards without invalidating these certificates.
        duals = [float(reduced[offset + j]) for j in range(tableau.num_rows)]
        answers: dict = {}
        for k in range(len(rhs_list)):
            if not feasible[k]:
                continue
            column = basic[:, k].tolist()
            values = [0.0] * tableau.num_vars
            for i, col in enumerate(tableau.basis):
                if col < tableau.num_vars:
                    values[col] = column[i]
            objective_value = sum(c * v for c, v in zip(tableau.objective, values))
            result = SimplexResult(
                "optimal", objective_value, tuple(values), tableau.pivots
            )
            if not self._certified(result, rhs_list[k], duals):
                continue
            answers[k] = result
            self.warm_solves += 1
        return [
            answers[k] if k in answers else self.solve(rhs_list[k])
            for k in range(len(rhs_list))
        ]
