"""Dense two-phase primal simplex for small LPs.

This is the LP-relaxation engine behind the exact branch-and-bound ILP
solver.  It is written for clarity and robustness on the small programs
produced by Theorem 3 (tens of variables / rows), not for scale:

* dense tableau representation;
* Bland's anti-cycling pivot rule;
* two phases, so right-hand sides of any sign are accepted.

Problem shape: ``maximize c . x  subject to  A x <= b,  x >= 0``.
Variable upper bounds must be encoded as explicit rows by the caller.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

#: Numerical tolerance for pivoting / optimality tests.
EPSILON = 1e-9


class SimplexResult:
    """Outcome of an LP solve."""

    __slots__ = ("status", "objective", "values", "pivots")

    def __init__(self, status: str, objective: float,
                 values: Tuple[float, ...], pivots: int):
        self.status = status
        self.objective = objective
        self.values = values
        self.pivots = pivots

    def __repr__(self) -> str:
        return (f"SimplexResult(status={self.status!r}, "
                f"objective={self.objective!r})")


def solve_lp(objective: Sequence[float], rows: Sequence[Sequence[float]],
             rhs: Sequence[float]) -> SimplexResult:
    """Maximize ``objective . x`` subject to ``rows @ x <= rhs, x >= 0``.

    Returns a :class:`SimplexResult` with status ``"optimal"``,
    ``"infeasible"`` or ``"unbounded"``.
    """
    num_vars = len(objective)
    num_rows = len(rows)
    if num_rows != len(rhs):
        raise ValueError("rows / rhs length mismatch")
    for row in rows:
        if len(row) != num_vars:
            raise ValueError("ragged constraint matrix")
    if num_vars == 0:
        if all(b >= -EPSILON for b in rhs):
            return SimplexResult("optimal", 0.0, (), 0)
        return SimplexResult("infeasible", 0.0, (), 0)

    # Standard form: A x + s = b with slack s per row.  Rows with b < 0
    # are negated (turning the slack coefficient to -1) and receive an
    # artificial variable for the phase-1 basis.
    total = num_vars + num_rows  # structural + slack columns
    tableau: List[List[float]] = []
    basis: List[int] = []
    artificial_cols: List[int] = []

    for i in range(num_rows):
        row = [float(v) for v in rows[i]] + [0.0] * num_rows + [0.0]
        row[num_vars + i] = 1.0
        row[-1] = float(rhs[i])
        if row[-1] < 0:
            row = [-v for v in row]
        tableau.append(row)

    # Decide the starting basis: slack when its coefficient stayed +1,
    # otherwise an artificial column appended on the fly.
    for i in range(num_rows):
        if tableau[i][num_vars + i] == 1.0:
            basis.append(num_vars + i)
        else:
            column = total + len(artificial_cols)
            artificial_cols.append(column)
            for j, row in enumerate(tableau):
                row.insert(-1, 1.0 if j == i else 0.0)
            basis.append(column)

    width = total + len(artificial_cols)
    pivots = 0

    def pivot(row_index: int, col_index: int) -> None:
        nonlocal pivots
        pivots += 1
        pivot_row = tableau[row_index]
        factor = pivot_row[col_index]
        for k in range(len(pivot_row)):
            pivot_row[k] /= factor
        for j, row in enumerate(tableau):
            if j == row_index:
                continue
            coeff = row[col_index]
            if abs(coeff) > EPSILON:
                for k in range(len(row)):
                    row[k] -= coeff * pivot_row[k]
        basis[row_index] = col_index

    def reduced_costs(costs: Sequence[float]) -> List[float]:
        """Reduced cost per column for a *minimization* objective."""
        rc = list(costs)
        for i, b_col in enumerate(basis):
            cb = costs[b_col]
            if cb == 0.0:
                continue
            for k in range(width):
                rc[k] -= cb * tableau[i][k]
        return rc

    def run_phase(costs: Sequence[float]) -> str:
        """Minimize ``costs . (all columns)`` with Bland's rule."""
        max_pivots = 50_000
        while True:
            rc = reduced_costs(costs)
            entering = -1
            for k in range(width):
                if k in basis:
                    continue
                if rc[k] < -EPSILON:
                    entering = k
                    break  # Bland: smallest index
            if entering < 0:
                return "optimal"
            # Ratio test (Bland ties by smallest basis index).
            leaving = -1
            best_ratio = math.inf
            for i, row in enumerate(tableau):
                coeff = row[entering]
                if coeff > EPSILON:
                    ratio = row[-1] / coeff
                    if (ratio < best_ratio - EPSILON
                            or (abs(ratio - best_ratio) <= EPSILON
                                and (leaving < 0
                                     or basis[i] < basis[leaving]))):
                        best_ratio = ratio
                        leaving = i
            if leaving < 0:
                return "unbounded"
            pivot(leaving, entering)
            if pivots > max_pivots:
                raise RuntimeError("simplex exceeded pivot budget")

    # ------------------------------------------------------------------
    # Phase 1: drive artificials to zero.
    # ------------------------------------------------------------------
    if artificial_cols:
        phase1_costs = [0.0] * width
        for col in artificial_cols:
            phase1_costs[col] = 1.0
        status = run_phase(phase1_costs)
        if status == "unbounded":  # pragma: no cover - cannot happen
            raise RuntimeError("phase 1 unbounded")
        infeasibility = sum(tableau[i][-1] for i, col in enumerate(basis)
                            if col in set(artificial_cols))
        if infeasibility > 1e-7:
            return SimplexResult("infeasible", 0.0, (), pivots)
        # Pivot any artificial still in the basis out (degenerate rows).
        art_set = set(artificial_cols)
        for i in range(num_rows):
            if basis[i] in art_set:
                for k in range(total):
                    if abs(tableau[i][k]) > EPSILON and k not in basis:
                        pivot(i, k)
                        break

    # ------------------------------------------------------------------
    # Phase 2: minimize -objective over structural + slack columns.
    # ------------------------------------------------------------------
    phase2_costs = [0.0] * width
    for k in range(num_vars):
        phase2_costs[k] = -float(objective[k])
    # Artificials must never re-enter: give them prohibitive cost.
    for col in artificial_cols:
        phase2_costs[col] = 1e18
    status = run_phase(phase2_costs)
    if status == "unbounded":
        return SimplexResult("unbounded", math.inf, (), pivots)

    values = [0.0] * num_vars
    for i, col in enumerate(basis):
        if col < num_vars:
            values[col] = tableau[i][-1]
    objective_value = sum(c * v for c, v in zip(objective, values))
    return SimplexResult("optimal", objective_value, tuple(values), pivots)
