"""Integer linear program representation.

The DMM computation of Theorem 3 is a multi-dimensional knapsack: maximize
a non-negative linear objective subject to ``A x <= b`` with non-negative
integer variables.  :class:`IntegerProgram` captures exactly that shape
(plus optional per-variable upper bounds); the solvers in this package all
consume it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass
class IntegerProgram:
    """``maximize c . x  subject to  A x <= b,  0 <= x <= u,  x integer``.

    Attributes
    ----------
    objective:
        Coefficient vector ``c`` (length = number of variables).
    rows:
        Constraint matrix ``A`` as a list of rows.
    rhs:
        Right-hand sides ``b`` (one per row).
    upper_bounds:
        Optional per-variable upper bounds; ``None`` entries mean
        unbounded above (but every variable is implicitly bounded by the
        constraints in a well-posed packing problem).
    names:
        Optional variable names for diagnostics.
    """

    objective: List[float]
    rows: List[List[float]]
    rhs: List[float]
    upper_bounds: Optional[List[Optional[float]]] = None
    names: Optional[List[str]] = None

    def __post_init__(self) -> None:
        n = len(self.objective)
        for i, row in enumerate(self.rows):
            if len(row) != n:
                raise ValueError(f"row {i} has {len(row)} coefficients, expected {n}")
        if len(self.rhs) != len(self.rows):
            raise ValueError(
                f"{len(self.rhs)} right-hand sides for {len(self.rows)} rows"
            )
        if self.upper_bounds is not None and len(self.upper_bounds) != n:
            raise ValueError("upper_bounds length mismatch")
        if self.names is not None and len(self.names) != n:
            raise ValueError("names length mismatch")

    @property
    def num_variables(self) -> int:
        return len(self.objective)

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    def variable_bound(self, index: int) -> float:
        """Tightest implied upper bound for variable ``index``: the
        explicit bound combined with single-row implications
        ``x_i <= b_j / A[j][i]`` for positive coefficients."""
        bound = math.inf
        if self.upper_bounds is not None:
            explicit = self.upper_bounds[index]
            if explicit is not None:
                bound = explicit
        for row, b in zip(self.rows, self.rhs):
            coeff = row[index]
            if coeff > 0:
                bound = min(bound, b / coeff)
        return bound

    def is_feasible(self, x: Sequence[float], tol: float = 1e-9) -> bool:
        """Check a candidate solution against all constraints."""
        if len(x) != self.num_variables:
            return False
        for value in x:
            if value < -tol:
                return False
        if self.upper_bounds is not None:
            for value, ub in zip(x, self.upper_bounds):
                if ub is not None and value > ub + tol:
                    return False
        for row, b in zip(self.rows, self.rhs):
            if sum(a * v for a, v in zip(row, x)) > b + tol:
                return False
        return True

    def objective_value(self, x: Sequence[float]) -> float:
        """Evaluate ``c . x``."""
        return sum(c * v for c, v in zip(self.objective, x))


@dataclass(frozen=True)
class Solution:
    """Result of an (I)LP solve."""

    status: str  # "optimal", "infeasible" or "unbounded"
    objective: float
    values: Tuple[float, ...]
    #: Number of branch-and-bound nodes / DP states / simplex pivots,
    #: backend-specific; for performance reporting only.
    work: int = 0

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"


def empty_solution() -> Solution:
    """The optimal solution of a program with no variables."""
    return Solution(status="optimal", objective=0.0, values=())
