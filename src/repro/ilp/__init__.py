"""Integer linear programming machinery for the Theorem 3 knapsack.

The environment provides no MILP library besides scipy, so this package
ships self-contained exact solvers:

* :func:`solve_branch_bound` — branch-and-bound over an own two-phase
  simplex (default);
* :func:`solve_dp` — exact dynamic program for integer-data instances;
* :func:`solve_greedy` — fast feasible heuristic (ablation baseline);
* :func:`solve_scipy` — scipy.optimize.milp (HiGHS) for cross-checking.

All consume :class:`IntegerProgram` (maximize, ``A x <= b``, integer
``x >= 0``) and return :class:`Solution`.

On top of the one-shot solvers sits the *stateful* layer used by the
DMM curve evaluation: :class:`PackingInstance` captures the
rhs-independent matrix once, and :class:`PackingEngine` re-solves it
against changing ``Omega`` capacities with warm-started branch-and-bound
incumbents, reused simplex bases and a capacity-independent DP table —
identical answers, a fraction of the work.
"""

from .branch_bound import BranchBoundState, solve_branch_bound
from .dp import DpTable, solve_dp
from .engine import (
    INCREMENTAL_BACKENDS,
    EngineStats,
    PackingEngine,
    PackingInstance,
)
from .export import to_lp_string, write_lp_file
from .greedy import solve_greedy
from .model import IntegerProgram, Solution
from .scipy_backend import scipy_available, solve_scipy
from .simplex import IncrementalLp, SimplexResult, solve_lp
from .solver import BACKENDS, DEFAULT_BACKEND, solve

__all__ = [
    "IntegerProgram",
    "Solution",
    "solve",
    "solve_lp",
    "SimplexResult",
    "IncrementalLp",
    "solve_branch_bound",
    "BranchBoundState",
    "solve_dp",
    "DpTable",
    "solve_greedy",
    "solve_scipy",
    "scipy_available",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "INCREMENTAL_BACKENDS",
    "EngineStats",
    "PackingEngine",
    "PackingInstance",
    "to_lp_string",
    "write_lp_file",
]
