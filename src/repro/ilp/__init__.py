"""Integer linear programming machinery for the Theorem 3 knapsack.

The environment provides no MILP library besides scipy, so this package
ships self-contained exact solvers:

* :func:`solve_branch_bound` — branch-and-bound over an own two-phase
  simplex (default);
* :func:`solve_dp` — exact dynamic program for integer-data instances;
* :func:`solve_greedy` — fast feasible heuristic (ablation baseline);
* :func:`solve_scipy` — scipy.optimize.milp (HiGHS) for cross-checking.

All consume :class:`IntegerProgram` (maximize, ``A x <= b``, integer
``x >= 0``) and return :class:`Solution`.
"""

from .branch_bound import solve_branch_bound
from .dp import solve_dp
from .export import to_lp_string, write_lp_file
from .greedy import solve_greedy
from .model import IntegerProgram, Solution
from .scipy_backend import scipy_available, solve_scipy
from .simplex import SimplexResult, solve_lp
from .solver import BACKENDS, DEFAULT_BACKEND, solve

__all__ = [
    "IntegerProgram",
    "Solution",
    "solve",
    "solve_lp",
    "SimplexResult",
    "solve_branch_bound",
    "solve_dp",
    "solve_greedy",
    "solve_scipy",
    "scipy_available",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "to_lp_string",
    "write_lp_file",
]
