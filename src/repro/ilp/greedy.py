"""Greedy lower-bound heuristic for packing programs.

Repeatedly takes the variable with the best profit-to-consumption ratio
as many times as the residual capacities allow.  Fast and feasible but
not optimal — used as a warm start / ablation baseline, never for the
reported DMM bounds.
"""

from __future__ import annotations

import math
from typing import List

from .model import IntegerProgram, Solution, empty_solution


def solve_greedy(program: IntegerProgram) -> Solution:
    """Feasible (sub-optimal) packing by ratio-greedy rounding."""
    n = program.num_variables
    if n == 0:
        return empty_solution()
    residual: List[float] = list(program.rhs)
    values = [0.0] * n

    def consumption(j: int) -> float:
        return sum(max(row[j], 0.0) for row in program.rows)

    order = sorted(
        range(n),
        key=lambda j: (
            -(program.objective[j] / (consumption(j) + 1e-12)),
            consumption(j),
        ),
    )
    steps = 0
    for j in order:
        if program.objective[j] <= 0:
            continue
        ub = program.variable_bound(j)
        # How many copies fit in the residual capacities?
        fit = math.inf if math.isinf(ub) else math.floor(ub + 1e-9)
        for row, cap in zip(program.rows, residual):
            a = row[j]
            if a > 0:
                fit = min(fit, math.floor(cap / a + 1e-9))
        if math.isinf(fit):
            return Solution("unbounded", math.inf, (), steps)
        fit = int(fit)
        if fit <= 0:
            continue
        values[j] = float(fit)
        steps += 1
        for i, row in enumerate(program.rows):
            residual[i] -= row[j] * fit

    solution = Solution(
        "optimal", program.objective_value(values), tuple(values), steps
    )
    if not program.is_feasible(solution.values):
        raise AssertionError("greedy produced an infeasible packing")
    return solution
