"""Exact multi-dimensional knapsack solving by dynamic programming.

Only applicable when all constraint coefficients and right-hand sides are
non-negative integers (true for Theorem 3 programs: the matrix is 0/1 and
the capacities are the integer ``Omega`` values).  The state space is the
product of the capacities, so a guard refuses instances that would blow
up; the branch-and-bound solver covers those.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from .model import IntegerProgram, Solution, empty_solution

#: Refuse DP instances with more states than this.
MAX_STATES = 2_000_000


def solve_dp(program: IntegerProgram) -> Solution:
    """Solve ``program`` exactly by DP over residual capacities."""
    n = program.num_variables
    if n == 0:
        return empty_solution()
    caps = []
    for b in program.rhs:
        if b < 0 or float(b) != math.floor(b):
            raise ValueError("DP solver needs non-negative integer rhs")
        caps.append(int(b))
    columns = []
    zero_columns = []
    for j in range(n):
        column = []
        for row in program.rows:
            a = row[j]
            if a < 0 or float(a) != math.floor(a):
                raise ValueError(
                    "DP solver needs non-negative integer coefficients")
            column.append(int(a))
        columns.append(tuple(column))
        if all(a == 0 for a in column):
            zero_columns.append(j)
            if program.objective[j] > 0 and math.isinf(
                    program.variable_bound(j)):
                return Solution("unbounded", math.inf, (), 0)

    states = 1
    for c in caps:
        states *= c + 1
        if states > MAX_STATES:
            raise ValueError(
                f"DP state space exceeds {MAX_STATES}; "
                "use the branch-and-bound solver")

    # f[state] = best objective with that residual capacity; parent
    # pointers reconstruct the packing.
    start: Tuple[int, ...] = tuple(caps)
    best: Dict[Tuple[int, ...], float] = {start: 0.0}
    parent: Dict[Tuple[int, ...], Tuple[Tuple[int, ...], int]] = {}
    # Process items one by one (bounded by explicit upper bounds if any),
    # layering the DP so each variable is only increased in its own pass.
    counts_bound = []
    for j in range(n):
        ub = program.variable_bound(j)
        counts_bound.append(None if math.isinf(ub) else int(math.floor(ub)))

    zero_set = set(zero_columns)
    for j in range(n):
        if j in zero_set:
            continue  # handled analytically below
        gain = program.objective[j]
        need = columns[j]
        current = dict(best)
        frontier = list(best.items())
        uses = 0
        while frontier:
            uses += 1
            if counts_bound[j] is not None and uses > counts_bound[j]:
                break
            next_frontier = []
            for state, value in frontier:
                new_state = tuple(s - a for s, a in zip(state, need))
                if any(s < 0 for s in new_state):
                    continue
                new_value = value + gain
                if new_value > current.get(new_state, -math.inf) + 1e-12:
                    current[new_state] = new_value
                    parent[new_state] = (state, j)
                    next_frontier.append((new_state, new_value))
            frontier = next_frontier
        best = current

    opt_state = max(best, key=lambda s: best[s])
    opt_value = best[opt_state]
    # Reconstruct variable counts.
    values = [0.0] * n
    state = opt_state
    while state in parent:
        prev, j = parent[state]
        values[j] += 1
        state = prev
    # Zero columns do not consume capacity: take them at their bound
    # when profitable.
    for j in zero_columns:
        if program.objective[j] > 0:
            values[j] = float(int(math.floor(program.variable_bound(j))))
            opt_value += program.objective[j] * values[j]
    solution = Solution("optimal", opt_value, tuple(values),
                        work=len(best))
    if not program.is_feasible(solution.values):
        # Reconstruction mismatch would be a bug; fail loudly.
        raise AssertionError("DP reconstruction produced infeasible packing")
    if abs(program.objective_value(solution.values) - opt_value) > 1e-6:
        raise AssertionError("DP reconstruction lost objective value")
    return solution
