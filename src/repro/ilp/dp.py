"""Exact multi-dimensional knapsack solving by dynamic programming.

Only applicable when all constraint coefficients and right-hand sides are
non-negative integers (true for Theorem 3 programs: the matrix is 0/1 and
the capacities are the integer ``Omega`` values).  The state space is the
product of the capacities, so a guard refuses instances that would blow
up; the branch-and-bound solver covers those.

Two forms are provided: :func:`solve_dp`, the classic one-shot solver
over residual capacities, and :class:`DpTable`, a *usage*-indexed table
that outlives one solve — its layers do not depend on the rhs, so a
re-solve against grown capacities (the monotone ``Omega`` schedule of a
DMM curve) is answered by scanning the existing table, and the table is
rebuilt (with geometric headroom) only when the capacities outgrow it.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from .model import IntegerProgram, Solution, empty_solution

#: Refuse DP instances with more states than this.
MAX_STATES = 2_000_000


def _states(caps: Sequence[int]) -> int:
    states = 1
    for c in caps:
        states *= c + 1
    return states


def _validate_caps(rhs: Sequence[float]) -> List[int]:
    caps = []
    for b in rhs:
        if b < 0 or float(b) != math.floor(b):
            raise ValueError("DP solver needs non-negative integer rhs")
        caps.append(int(b))
    return caps


class DpTable:
    """Usage-indexed knapsack table reusable across growing capacities.

    States are total *consumption* vectors (how much of every row a
    partial packing uses), built upward from zero — unlike the residual
    form of :func:`solve_dp`, the layer contents do not depend on the
    rhs, only the pruning bound does.  :meth:`query` therefore answers
    any capacity vector within the table's coverage by a pure scan;
    :meth:`ensure` rebuilds with doubled headroom only when a requested
    capacity exceeds the coverage, so a monotone capacity schedule costs
    O(log) rebuilds instead of one per point.

    Zero columns (variables consuming no capacity) must be handled by
    the caller; per-variable copy bounds beyond the capacity-implied
    ones are passed statically via ``counts_bound``.
    """

    def __init__(
        self,
        objective: Sequence[float],
        columns: Sequence[Tuple[int, ...]],
        counts_bound: Optional[Sequence[Optional[int]]] = None,
    ):
        self._objective = [float(c) for c in objective]
        self._columns = [tuple(int(a) for a in column) for column in columns]
        for column in self._columns:
            if any(a < 0 for a in column):
                raise ValueError("DP solver needs non-negative integer coefficients")
        self._num_rows = len(self._columns[0]) if self._columns else 0
        if counts_bound is None:
            self._counts_bound: List[Optional[int]] = [None] * len(self._columns)
        else:
            self._counts_bound = list(counts_bound)
        self._caps: Optional[List[int]] = None
        self._best: Dict[Tuple[int, ...], float] = {}
        self._parent: Dict[Tuple[int, ...], Tuple[Tuple[int, ...], int]] = {}
        #: Rebuild counter (performance diagnostics).
        self.rebuilds = 0

    def __len__(self) -> int:
        return len(self._best)

    def covers(self, caps: Sequence[int]) -> bool:
        """True when :meth:`query` can answer ``caps`` from the table."""
        return self._caps is not None and all(
            c <= have for c, have in zip(caps, self._caps)
        )

    def ensure(self, caps: Sequence[int]) -> None:
        """Grow the table (rebuilding with headroom) to cover ``caps``.

        Coverage of earlier, larger capacity vectors is kept when it
        fits but never required: when the running maximum (or its
        doubled headroom) would blow the state budget, the table shrinks
        to exactly the requested capacities, so any vector the one-shot
        :func:`solve_dp` accepts is accepted here too."""
        if self.covers(caps):
            return
        target = [
            max(c, have)
            for c, have in zip(caps, self._caps or [0] * self._num_rows)
        ]
        padded = [2 * c for c in target]
        for candidate in (padded, target, list(caps)):
            if _states(candidate) <= MAX_STATES:
                self._build(candidate)
                return
        raise ValueError(
            f"DP state space exceeds {MAX_STATES}; "
            "use the branch-and-bound solver"
        )

    def _build(self, caps: List[int]) -> None:
        self.rebuilds += 1
        self._caps = list(caps)
        zero = (0,) * self._num_rows
        best: Dict[Tuple[int, ...], float] = {zero: 0.0}
        parent: Dict[Tuple[int, ...], Tuple[Tuple[int, ...], int]] = {}
        for j, column in enumerate(self._columns):
            if all(a == 0 for a in column):
                continue  # zero columns are the caller's responsibility
            gain = self._objective[j]
            bound = self._counts_bound[j]
            current = dict(best)
            frontier = list(best.items())
            uses = 0
            while frontier:
                uses += 1
                if bound is not None and uses > bound:
                    break
                next_frontier = []
                for usage, value in frontier:
                    new_usage = tuple(u + a for u, a in zip(usage, column))
                    if any(u > c for u, c in zip(new_usage, caps)):
                        continue
                    new_value = value + gain
                    if new_value > current.get(new_usage, -math.inf) + 1e-12:
                        current[new_usage] = new_value
                        parent[new_usage] = (usage, j)
                        next_frontier.append((new_usage, new_value))
                frontier = next_frontier
            best = current
        self._best = best
        self._parent = parent

    def query(self, caps: Sequence[int]) -> Tuple[float, List[float]]:
        """Optimal value and per-variable counts within ``caps`` (which
        must be covered; see :meth:`ensure`)."""
        if not self.covers(caps):
            raise ValueError("capacity vector outside the table coverage")
        best_usage: Optional[Tuple[int, ...]] = None
        best_value = -math.inf
        for usage, value in self._best.items():
            if value > best_value and all(u <= c for u, c in zip(usage, caps)):
                best_usage = usage
                best_value = value
        values = [0.0] * len(self._columns)
        state = best_usage
        while state in self._parent:
            prev, j = self._parent[state]
            values[j] += 1
            state = prev
        return best_value, values


def solve_dp(program: IntegerProgram) -> Solution:
    """Solve ``program`` exactly by DP over residual capacities."""
    n = program.num_variables
    if n == 0:
        return empty_solution()
    caps = _validate_caps(program.rhs)
    columns = []
    zero_columns = []
    for j in range(n):
        column = []
        for row in program.rows:
            a = row[j]
            if a < 0 or float(a) != math.floor(a):
                raise ValueError("DP solver needs non-negative integer coefficients")
            column.append(int(a))
        columns.append(tuple(column))
        if all(a == 0 for a in column):
            zero_columns.append(j)
            if program.objective[j] > 0 and math.isinf(program.variable_bound(j)):
                return Solution("unbounded", math.inf, (), 0)

    states = 1
    for c in caps:
        states *= c + 1
        if states > MAX_STATES:
            raise ValueError(
                f"DP state space exceeds {MAX_STATES}; "
                "use the branch-and-bound solver"
            )

    # f[state] = best objective with that residual capacity; parent
    # pointers reconstruct the packing.
    start: Tuple[int, ...] = tuple(caps)
    best: Dict[Tuple[int, ...], float] = {start: 0.0}
    parent: Dict[Tuple[int, ...], Tuple[Tuple[int, ...], int]] = {}
    # Process items one by one (bounded by explicit upper bounds if any),
    # layering the DP so each variable is only increased in its own pass.
    counts_bound = []
    for j in range(n):
        ub = program.variable_bound(j)
        counts_bound.append(None if math.isinf(ub) else int(math.floor(ub)))

    zero_set = set(zero_columns)
    for j in range(n):
        if j in zero_set:
            continue  # handled analytically below
        gain = program.objective[j]
        need = columns[j]
        current = dict(best)
        frontier = list(best.items())
        uses = 0
        while frontier:
            uses += 1
            if counts_bound[j] is not None and uses > counts_bound[j]:
                break
            next_frontier = []
            for state, value in frontier:
                new_state = tuple(s - a for s, a in zip(state, need))
                if any(s < 0 for s in new_state):
                    continue
                new_value = value + gain
                if new_value > current.get(new_state, -math.inf) + 1e-12:
                    current[new_state] = new_value
                    parent[new_state] = (state, j)
                    next_frontier.append((new_state, new_value))
            frontier = next_frontier
        best = current

    opt_state = max(best, key=lambda s: best[s])
    opt_value = best[opt_state]
    # Reconstruct variable counts.
    values = [0.0] * n
    state = opt_state
    while state in parent:
        prev, j = parent[state]
        values[j] += 1
        state = prev
    # Zero columns do not consume capacity: take them at their bound
    # when profitable.
    for j in zero_columns:
        if program.objective[j] > 0:
            values[j] = float(int(math.floor(program.variable_bound(j))))
            opt_value += program.objective[j] * values[j]
    solution = Solution("optimal", opt_value, tuple(values), work=len(best))
    if not program.is_feasible(solution.values):
        # Reconstruction mismatch would be a bug; fail loudly.
        raise AssertionError("DP reconstruction produced infeasible packing")
    if abs(program.objective_value(solution.values) - opt_value) > 1e-6:
        raise AssertionError("DP reconstruction lost objective value")
    return solution
