"""Export integer programs in CPLEX LP format.

Lets users inspect the Theorem 3 packing or solve it with an external
MILP solver (CPLEX, Gurobi, HiGHS, lp_solve all read this format).  The
writer covers exactly the :class:`IntegerProgram` shape: maximization,
``<=`` rows, non-negative general integers with optional upper bounds.
"""

from __future__ import annotations

import math
from typing import List, Optional

from .model import IntegerProgram


def _variable_names(program: IntegerProgram) -> List[str]:
    if program.names is not None:
        # LP format identifiers: letters, digits and a few symbols; be
        # conservative and normalize everything else to underscores.
        sanitized = []
        seen = set()
        for index, raw in enumerate(program.names):
            name = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in raw)
            if not name or name[0].isdigit():
                name = f"x_{name}" if name else f"x{index}"
            while name in seen:
                name = f"{name}_{index}"
            seen.add(name)
            sanitized.append(name)
        return sanitized
    return [f"x{index}" for index in range(program.num_variables)]


def _linear_expression(coefficients, names) -> str:
    terms = []
    for coefficient, name in zip(coefficients, names):
        if coefficient == 0:
            continue
        sign = "+" if coefficient > 0 else "-"
        magnitude = abs(coefficient)
        value = (
            f"{int(magnitude)}"
            if float(magnitude).is_integer()
            else f"{magnitude!r}"
        )
        terms.append(f"{sign} {value} {name}")
    if not terms:
        return "0 " + names[0] if names else "0"
    text = " ".join(terms)
    return text[2:] if text.startswith("+ ") else text


def to_lp_string(program: IntegerProgram, problem_name: str = "twca_packing") -> str:
    """Serialize ``program`` as an LP-format document."""
    names = _variable_names(program)
    lines = [
        f"\\ {problem_name}: maximize packed unschedulable combinations",
        "Maximize",
        f" obj: {_linear_expression(program.objective, names)}",
        "Subject To",
    ]
    for index, (row, bound) in enumerate(zip(program.rows, program.rhs)):
        expression = _linear_expression(row, names)
        value = f"{int(bound)}" if float(bound).is_integer() else f"{bound!r}"
        lines.append(f" c{index}: {expression} <= {value}")
    lines.append("Bounds")
    for index, name in enumerate(names):
        upper: Optional[float] = None
        if program.upper_bounds is not None:
            upper = program.upper_bounds[index]
        if upper is None or math.isinf(upper):
            lines.append(f" 0 <= {name}")
        else:
            value = f"{int(upper)}" if float(upper).is_integer() else f"{upper!r}"
            lines.append(f" 0 <= {name} <= {value}")
    lines.append("Generals")
    lines.append(" " + " ".join(names))
    lines.append("End")
    return "\n".join(lines) + "\n"


def write_lp_file(
    program: IntegerProgram, path: str, problem_name: str = "twca_packing"
) -> None:
    """Write ``program`` to ``path`` in LP format."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(to_lp_string(program, problem_name))
