"""Exact ILP solving by branch-and-bound over the simplex relaxation.

Depth-first branch-and-bound with best-first flavour (the branch keeping
the relaxation value higher is explored first), variable selection by
most-fractional value, and integral rounding tolerance.  Designed for the
small packing programs of Theorem 3; exactness is what matters, not
scale.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from .model import IntegerProgram, Solution, empty_solution
from .simplex import solve_lp

#: Values closer than this to an integer are treated as integral.
INT_TOL = 1e-6

#: Node budget: a safety valve against degenerate inputs.
MAX_NODES = 200_000


def _relaxation(program: IntegerProgram,
                lower: List[float],
                upper: List[float]):
    """Solve the LP relaxation under per-variable bounds by shifting
    ``x = y + lower`` and appending bound rows ``y_i <= upper_i - lower_i``.
    Returns ``(status, objective, values)`` in the original coordinates.
    """
    n = program.num_variables
    rows: List[List[float]] = []
    rhs: List[float] = []
    for row, b in zip(program.rows, program.rhs):
        shift = sum(a * lo for a, lo in zip(row, lower))
        rows.append(list(row))
        rhs.append(b - shift)
    for i in range(n):
        span = upper[i] - lower[i]
        if span < 0:
            return "infeasible", 0.0, ()
        if not math.isinf(span):
            bound_row = [0.0] * n
            bound_row[i] = 1.0
            rows.append(bound_row)
            rhs.append(span)
    result = solve_lp(program.objective, rows, rhs)
    if result.status != "optimal":
        return result.status, 0.0, ()
    values = tuple(v + lo for v, lo in zip(result.values, lower))
    offset = sum(c * lo for c, lo in zip(program.objective, lower))
    return "optimal", result.objective + offset, values


def solve_branch_bound(program: IntegerProgram) -> Solution:
    """Solve ``program`` exactly.  All variables are integer, >= 0."""
    n = program.num_variables
    if n == 0:
        return empty_solution()

    base_upper = [program.variable_bound(i) for i in range(n)]
    for i, ub in enumerate(base_upper):
        if math.isinf(ub) and program.objective[i] > 0:
            # An unconstrained profitable variable means the packing is
            # unbounded; Theorem 3 programs never are, but report it.
            return Solution("unbounded", math.inf, (), 0)
        if not math.isinf(ub):
            base_upper[i] = math.floor(ub + INT_TOL)

    best_value = -math.inf
    best_x: Optional[Tuple[float, ...]] = None
    nodes = 0

    def recurse(lower: List[float], upper: List[float]) -> None:
        nonlocal best_value, best_x, nodes
        nodes += 1
        if nodes > MAX_NODES:
            raise RuntimeError(
                f"branch-and-bound exceeded {MAX_NODES} nodes")
        status, objective, values = _relaxation(program, lower, upper)
        if status != "optimal":
            return
        # Integer-valued objectives let us round the bound down.
        bound = objective
        if all(float(c).is_integer() for c in program.objective):
            bound = math.floor(objective + INT_TOL)
        if bound <= best_value + INT_TOL:
            return
        # Find the most fractional variable.
        frac_index = -1
        frac_amount = 0.0
        for i, v in enumerate(values):
            distance = abs(v - round(v))
            if distance > max(INT_TOL, frac_amount):
                frac_amount = distance
                frac_index = i
        if frac_index < 0:
            rounded = tuple(round(v) for v in values)
            if program.is_feasible(rounded):
                value = program.objective_value(rounded)
                if value > best_value:
                    best_value = value
                    best_x = rounded
            return
        v = values[frac_index]
        floor_v = math.floor(v)
        # Explore the "up" branch first: packing problems usually profit
        # from larger values, which tightens the incumbent early.
        up_lower = list(lower)
        up_lower[frac_index] = floor_v + 1
        recurse(up_lower, upper)
        down_upper = list(upper)
        down_upper[frac_index] = floor_v
        recurse(lower, down_upper)

    recurse([0.0] * n, list(base_upper))
    if best_x is None:
        # x = 0 is always feasible for packing rows with b >= 0; if even
        # the relaxation was infeasible the program has contradictory
        # rows.
        zero = tuple(0.0 for _ in range(n))
        if program.is_feasible(zero):
            return Solution("optimal", 0.0, zero, nodes)
        return Solution("infeasible", 0.0, (), nodes)
    return Solution("optimal", float(best_value), best_x, nodes)
