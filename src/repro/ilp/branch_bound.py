"""Exact ILP solving by branch-and-bound over the simplex relaxation.

Best-first branch-and-bound over an explicit heap of open nodes, with
variable selection by most-fractional value and integral rounding
tolerance.  Designed for the small packing programs of Theorem 3;
exactness is what matters, not scale.

Node relaxations share one :class:`~repro.ilp.simplex.IncrementalLp`:
branching only changes variable bounds, which is an rhs-only
perturbation of the standard-form ``[A; I]`` matrix.  Keeping the open
frontier explicit (instead of the historic recursion, retained as the
``incremental=False`` reference path) lets whole *batches* of node
relaxations resolve through one
:meth:`~repro.ilp.simplex.IncrementalLp.solve_many` sweep: every node
whose rhs is already primal feasible under the shared basis is answered
by one vectorized ``B^-1 . RHS`` product, and only the rest pay
dual-simplex repairs.  A :class:`BranchBoundState` carried across
re-solves of the same matrix extends the sharing to whole
``resolve(rhs)`` sequences and additionally seeds the incumbent — a
previously optimal packing that is still feasible bounds the search
from below, often proving optimality at the root node.  Warm state and
batching never change the computed optimum, only the node/pivot counts.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .model import IntegerProgram, Solution, empty_solution
from .simplex import IncrementalLp, solve_lp

#: Values closer than this to an integer are treated as integral.
INT_TOL = 1e-6

#: Node budget: a safety valve against degenerate inputs.
MAX_NODES = 200_000

#: Open-node relaxations gathered into one ``solve_many`` batch.
NODE_BATCH = 64


@dataclass
class BranchBoundState:
    """Mutable warm-start state shared across rhs-only re-solves.

    ``incumbent`` is a previously returned optimal solution; it is used
    only after re-checking feasibility against the current program.
    ``lp`` is the persistent node-relaxation tableau; it is only valid
    across programs sharing one constraint matrix (the packing engine's
    contract) and is rebuilt whenever the dimensions disagree.
    """

    incumbent: Optional[Solution] = None
    lp: Optional[IncrementalLp] = None


def _relaxation_cold(program: IntegerProgram, lower: List[float], upper: List[float]):
    """Solve the LP relaxation under per-variable bounds by shifting
    ``x = y + lower`` and appending bound rows ``y_i <= upper_i - lower_i``.
    Returns ``(status, objective, values)`` in the original coordinates.
    Fallback path for programs with unbounded variables.
    """
    n = program.num_variables
    rows: List[List[float]] = []
    rhs: List[float] = []
    for row, b in zip(program.rows, program.rhs):
        shift = sum(a * lo for a, lo in zip(row, lower))
        rows.append(list(row))
        rhs.append(b - shift)
    for i in range(n):
        span = upper[i] - lower[i]
        if span < 0:
            return "infeasible", 0.0, ()
        if not math.isinf(span):
            bound_row = [0.0] * n
            bound_row[i] = 1.0
            rows.append(bound_row)
            rhs.append(span)
    result = solve_lp(program.objective, rows, rhs)
    if result.status != "optimal":
        return result.status, 0.0, ()
    values = tuple(v + lo for v, lo in zip(result.values, lower))
    offset = sum(c * lo for c, lo in zip(program.objective, lower))
    return "optimal", result.objective + offset, values


def _node_rhs(
    program: IntegerProgram, lower: List[float], upper: List[float]
) -> Optional[List[float]]:
    """The rhs vector a node's bounds induce on the fixed ``[A; I]``
    matrix (shift ``x = y + lower``, cap ``y_i <= upper_i - lower_i``),
    or ``None`` when some span is negative (the node is infeasible
    without solving anything)."""
    n = program.num_variables
    rhs: List[float] = []
    for row, b in zip(program.rows, program.rhs):
        rhs.append(b - sum(a * lo for a, lo in zip(row, lower)))
    for i in range(n):
        span = upper[i] - lower[i]
        if span < 0:
            return None
        rhs.append(span)
    return rhs


def _node_lp(program: IntegerProgram, state: Optional[BranchBoundState]):
    """The shared node-relaxation tableau over ``[A; I]`` — reused from
    ``state`` when its dimensions match, rebuilt otherwise."""
    n = program.num_variables
    expected_rows = program.num_rows + n
    if state is not None and state.lp is not None:
        lp = state.lp
        if len(lp.objective) == n and len(lp.rows) == expected_rows:
            return lp
    matrix = [list(row) for row in program.rows]
    for i in range(n):
        bound_row = [0.0] * n
        bound_row[i] = 1.0
        matrix.append(bound_row)
    lp = IncrementalLp(program.objective, matrix)
    if state is not None:
        state.lp = lp
    return lp


def solve_branch_bound(
    program: IntegerProgram,
    state: Optional[BranchBoundState] = None,
    *,
    incremental: bool = True,
) -> Solution:
    """Solve ``program`` exactly.  All variables are integer, >= 0.

    ``state`` (optional) warm-starts the search from a previous solve of
    the same matrix — see :class:`BranchBoundState`; results are
    identical with or without it.  The default search keeps the open
    frontier as an explicit best-first heap and resolves batches of
    node relaxations through one
    :meth:`~repro.ilp.simplex.IncrementalLp.solve_many` sweep.
    ``incremental=False`` forces the historic recursion with a cold
    two-phase relaxation at every node (the reference path for
    differential tests and benchmarks); programs with unbounded
    variables take the recursive cold path as well.  Every path computes
    the identical optimum — only node/pivot counts differ.
    """
    n = program.num_variables
    if n == 0:
        return empty_solution()

    base_upper = [program.variable_bound(i) for i in range(n)]
    for i, ub in enumerate(base_upper):
        if math.isinf(ub) and program.objective[i] > 0:
            # An unconstrained profitable variable means the packing is
            # unbounded; Theorem 3 programs never are, but report it.
            return Solution("unbounded", math.inf, (), 0)
        if not math.isinf(ub):
            base_upper[i] = math.floor(ub + INT_TOL)

    # The persistent node LP needs every bound row present; programs
    # with (unprofitable) unbounded variables take the cold path.
    lp: Optional[IncrementalLp] = None
    if incremental and all(not math.isinf(ub) for ub in base_upper):
        lp = _node_lp(program, state)

    best_value = -math.inf
    best_x: Optional[Tuple[float, ...]] = None
    if state is not None and state.incumbent is not None:
        candidate = state.incumbent.values
        if len(candidate) == n and program.is_feasible(candidate):
            # Re-evaluate against this program's objective so the seed
            # can never import a stale value.
            best_value = program.objective_value(candidate)
            best_x = tuple(candidate)
    nodes = 0
    integral_objective = all(float(c).is_integer() for c in program.objective)

    def node_bound(objective: float) -> float:
        # Integer-valued objectives let us round the bound down.
        if integral_objective:
            return math.floor(objective + INT_TOL)
        return objective

    def most_fractional(values: Tuple[float, ...]) -> int:
        frac_index = -1
        frac_amount = 0.0
        for i, v in enumerate(values):
            distance = abs(v - round(v))
            if distance > max(INT_TOL, frac_amount):
                frac_amount = distance
                frac_index = i
        return frac_index

    def accept_integral(values: Tuple[float, ...]) -> None:
        nonlocal best_value, best_x
        rounded = tuple(round(v) for v in values)
        if program.is_feasible(rounded):
            value = program.objective_value(rounded)
            if value > best_value:
                best_value = value
                best_x = rounded

    def recurse(lower: List[float], upper: List[float]) -> None:
        nonlocal best_value, best_x, nodes
        nodes += 1
        if nodes > MAX_NODES:
            raise RuntimeError(f"branch-and-bound exceeded {MAX_NODES} nodes")
        status, objective, values = _relaxation_cold(program, lower, upper)
        if status != "optimal":
            return
        if node_bound(objective) <= best_value + INT_TOL:
            return
        frac_index = most_fractional(values)
        if frac_index < 0:
            accept_integral(values)
            return
        floor_v = math.floor(values[frac_index])
        # Explore the "up" branch first: packing problems usually profit
        # from larger values, which tightens the incumbent early.
        up_lower = list(lower)
        up_lower[frac_index] = floor_v + 1
        recurse(up_lower, upper)
        down_upper = list(upper)
        down_upper[frac_index] = floor_v
        recurse(lower, down_upper)

    def best_first(lp: IncrementalLp) -> None:
        """Explicit open-node frontier: pop the most promising nodes
        (highest inherited relaxation bound; newest first on ties, with
        each node's "up" child ahead of its "down" child), resolve
        their relaxations as one ``solve_many`` batch over the shared
        ``[A; I]`` tableau, then branch.  Nodes whose inherited bound
        can no longer beat the incumbent are discarded unsolved."""
        nonlocal best_value, best_x, nodes
        sequence = 0
        heap: List[Tuple[float, int, List[float], List[float]]] = [
            (-math.inf, 0, [0.0] * n, list(base_upper))
        ]
        while heap:
            open_nodes: List[Tuple[List[float], List[float]]] = []
            rhs_batch: List[List[float]] = []
            offsets: List[float] = []
            # Speculation control: every node of a batch is relaxed
            # against the incumbent known when the batch was formed, so
            # a wide batch can waste relaxations an in-batch incumbent
            # improvement would have pruned.  Stream nodes one at a
            # time while the frontier is narrow and batch only a
            # quarter of a genuinely wide frontier, bounding the waste
            # per incumbent improvement.
            limit = max(1, min(NODE_BATCH, len(heap) // 4))
            while heap and len(rhs_batch) < limit:
                neg_bound, _, lower, upper = heapq.heappop(heap)
                if -neg_bound <= best_value + INT_TOL:
                    continue  # the whole subtree is already beaten
                nodes += 1
                if nodes > MAX_NODES:
                    raise RuntimeError(
                        f"branch-and-bound exceeded {MAX_NODES} nodes"
                    )
                rhs = _node_rhs(program, lower, upper)
                if rhs is None:
                    continue  # crossed bounds: infeasible without solving
                open_nodes.append((lower, upper))
                rhs_batch.append(rhs)
                offsets.append(
                    sum(c * lo for c, lo in zip(program.objective, lower))
                )
            if not rhs_batch:
                continue
            results = lp.solve_many(rhs_batch)
            for (lower, upper), offset, result in zip(
                open_nodes, offsets, results
            ):
                if result.status != "optimal":
                    continue
                objective = result.objective + offset
                bound = node_bound(objective)
                if bound <= best_value + INT_TOL:
                    continue
                values = tuple(v + lo for v, lo in zip(result.values, lower))
                frac_index = most_fractional(values)
                if frac_index < 0:
                    accept_integral(values)
                    continue
                floor_v = math.floor(values[frac_index])
                up_lower = list(lower)
                up_lower[frac_index] = floor_v + 1
                down_upper = list(upper)
                down_upper[frac_index] = floor_v
                # Negated sequence numbers make newer nodes win ties
                # (depth-first-ish frontier); the "up" child gets the
                # larger sequence, so on equal bounds it pops first —
                # the historic exploration preference.
                heapq.heappush(heap, (-bound, -(sequence + 1), lower, down_upper))
                heapq.heappush(heap, (-bound, -(sequence + 2), up_lower, upper))
                sequence += 2

    if lp is not None:
        best_first(lp)
    else:
        recurse([0.0] * n, list(base_upper))
    if best_x is None:
        # x = 0 is always feasible for packing rows with b >= 0; if even
        # the relaxation was infeasible the program has contradictory
        # rows.
        zero = tuple(0.0 for _ in range(n))
        if program.is_feasible(zero):
            return Solution("optimal", 0.0, zero, nodes)
        return Solution("infeasible", 0.0, (), nodes)
    return Solution("optimal", float(best_value), best_x, nodes)
