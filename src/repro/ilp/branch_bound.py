"""Exact ILP solving by branch-and-bound over the simplex relaxation.

Depth-first branch-and-bound with best-first flavour (the branch keeping
the relaxation value higher is explored first), variable selection by
most-fractional value, and integral rounding tolerance.  Designed for the
small packing programs of Theorem 3; exactness is what matters, not
scale.

Node relaxations share one :class:`~repro.ilp.simplex.IncrementalLp`:
branching only changes variable bounds, which is an rhs-only
perturbation of the standard-form matrix, so each node costs a handful
of dual-simplex pivots instead of a cold two-phase solve.  A
:class:`BranchBoundState` carried across re-solves of the same matrix
extends the sharing to whole ``resolve(rhs)`` sequences and additionally
seeds the incumbent — a previously optimal packing that is still
feasible bounds the search from below, often proving optimality at the
root node.  Warm state never changes the computed optimum, only the
node/pivot counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .model import IntegerProgram, Solution, empty_solution
from .simplex import IncrementalLp, solve_lp

#: Values closer than this to an integer are treated as integral.
INT_TOL = 1e-6

#: Node budget: a safety valve against degenerate inputs.
MAX_NODES = 200_000


@dataclass
class BranchBoundState:
    """Mutable warm-start state shared across rhs-only re-solves.

    ``incumbent`` is a previously returned optimal solution; it is used
    only after re-checking feasibility against the current program.
    ``lp`` is the persistent node-relaxation tableau; it is only valid
    across programs sharing one constraint matrix (the packing engine's
    contract) and is rebuilt whenever the dimensions disagree.
    """

    incumbent: Optional[Solution] = None
    lp: Optional[IncrementalLp] = None


def _relaxation_cold(program: IntegerProgram, lower: List[float], upper: List[float]):
    """Solve the LP relaxation under per-variable bounds by shifting
    ``x = y + lower`` and appending bound rows ``y_i <= upper_i - lower_i``.
    Returns ``(status, objective, values)`` in the original coordinates.
    Fallback path for programs with unbounded variables.
    """
    n = program.num_variables
    rows: List[List[float]] = []
    rhs: List[float] = []
    for row, b in zip(program.rows, program.rhs):
        shift = sum(a * lo for a, lo in zip(row, lower))
        rows.append(list(row))
        rhs.append(b - shift)
    for i in range(n):
        span = upper[i] - lower[i]
        if span < 0:
            return "infeasible", 0.0, ()
        if not math.isinf(span):
            bound_row = [0.0] * n
            bound_row[i] = 1.0
            rows.append(bound_row)
            rhs.append(span)
    result = solve_lp(program.objective, rows, rhs)
    if result.status != "optimal":
        return result.status, 0.0, ()
    values = tuple(v + lo for v, lo in zip(result.values, lower))
    offset = sum(c * lo for c, lo in zip(program.objective, lower))
    return "optimal", result.objective + offset, values


def _relaxation_incremental(
    program: IntegerProgram,
    lower: List[float],
    upper: List[float],
    lp: IncrementalLp,
):
    """The same relaxation through the persistent tableau: the node's
    bounds become the rhs of the fixed ``[A; I]`` matrix."""
    n = program.num_variables
    rhs: List[float] = []
    for row, b in zip(program.rows, program.rhs):
        rhs.append(b - sum(a * lo for a, lo in zip(row, lower)))
    for i in range(n):
        span = upper[i] - lower[i]
        if span < 0:
            return "infeasible", 0.0, ()
        rhs.append(span)
    result = lp.solve(rhs)
    if result.status != "optimal":
        return result.status, 0.0, ()
    values = tuple(v + lo for v, lo in zip(result.values, lower))
    offset = sum(c * lo for c, lo in zip(program.objective, lower))
    return "optimal", result.objective + offset, values


def _node_lp(program: IntegerProgram, state: Optional[BranchBoundState]):
    """The shared node-relaxation tableau over ``[A; I]`` — reused from
    ``state`` when its dimensions match, rebuilt otherwise."""
    n = program.num_variables
    expected_rows = program.num_rows + n
    if state is not None and state.lp is not None:
        lp = state.lp
        if len(lp.objective) == n and len(lp.rows) == expected_rows:
            return lp
    matrix = [list(row) for row in program.rows]
    for i in range(n):
        bound_row = [0.0] * n
        bound_row[i] = 1.0
        matrix.append(bound_row)
    lp = IncrementalLp(program.objective, matrix)
    if state is not None:
        state.lp = lp
    return lp


def solve_branch_bound(
    program: IntegerProgram,
    state: Optional[BranchBoundState] = None,
    *,
    incremental: bool = True,
) -> Solution:
    """Solve ``program`` exactly.  All variables are integer, >= 0.

    ``state`` (optional) warm-starts the search from a previous solve of
    the same matrix — see :class:`BranchBoundState`; results are
    identical with or without it.  ``incremental=False`` forces the
    historic cold two-phase relaxation at every node (the reference
    path for differential tests and benchmarks).
    """
    n = program.num_variables
    if n == 0:
        return empty_solution()

    base_upper = [program.variable_bound(i) for i in range(n)]
    for i, ub in enumerate(base_upper):
        if math.isinf(ub) and program.objective[i] > 0:
            # An unconstrained profitable variable means the packing is
            # unbounded; Theorem 3 programs never are, but report it.
            return Solution("unbounded", math.inf, (), 0)
        if not math.isinf(ub):
            base_upper[i] = math.floor(ub + INT_TOL)

    # The persistent node LP needs every bound row present; programs
    # with (unprofitable) unbounded variables take the cold path.
    lp: Optional[IncrementalLp] = None
    if incremental and all(not math.isinf(ub) for ub in base_upper):
        lp = _node_lp(program, state)

    best_value = -math.inf
    best_x: Optional[Tuple[float, ...]] = None
    if state is not None and state.incumbent is not None:
        candidate = state.incumbent.values
        if len(candidate) == n and program.is_feasible(candidate):
            # Re-evaluate against this program's objective so the seed
            # can never import a stale value.
            best_value = program.objective_value(candidate)
            best_x = tuple(candidate)
    nodes = 0
    integral_objective = all(float(c).is_integer() for c in program.objective)

    def recurse(lower: List[float], upper: List[float]) -> None:
        nonlocal best_value, best_x, nodes
        nodes += 1
        if nodes > MAX_NODES:
            raise RuntimeError(f"branch-and-bound exceeded {MAX_NODES} nodes")
        if lp is not None:
            status, objective, values = _relaxation_incremental(
                program, lower, upper, lp
            )
        else:
            status, objective, values = _relaxation_cold(program, lower, upper)
        if status != "optimal":
            return
        # Integer-valued objectives let us round the bound down.
        bound = objective
        if integral_objective:
            bound = math.floor(objective + INT_TOL)
        if bound <= best_value + INT_TOL:
            return
        # Find the most fractional variable.
        frac_index = -1
        frac_amount = 0.0
        for i, v in enumerate(values):
            distance = abs(v - round(v))
            if distance > max(INT_TOL, frac_amount):
                frac_amount = distance
                frac_index = i
        if frac_index < 0:
            rounded = tuple(round(v) for v in values)
            if program.is_feasible(rounded):
                value = program.objective_value(rounded)
                if value > best_value:
                    best_value = value
                    best_x = rounded
            return
        v = values[frac_index]
        floor_v = math.floor(v)
        # Explore the "up" branch first: packing problems usually profit
        # from larger values, which tightens the incumbent early.
        up_lower = list(lower)
        up_lower[frac_index] = floor_v + 1
        recurse(up_lower, upper)
        down_upper = list(upper)
        down_upper[frac_index] = floor_v
        recurse(lower, down_upper)

    recurse([0.0] * n, list(base_upper))
    if best_x is None:
        # x = 0 is always feasible for packing rows with b >= 0; if even
        # the relaxation was infeasible the program has contradictory
        # rows.
        zero = tuple(0.0 for _ in range(n))
        if program.is_feasible(zero):
            return Solution("optimal", 0.0, zero, nodes)
        return Solution("infeasible", 0.0, (), nodes)
    return Solution("optimal", float(best_value), best_x, nodes)
