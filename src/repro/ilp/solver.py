"""Backend-dispatching facade for the ILP solvers."""

from __future__ import annotations

from typing import Callable, Dict

from .branch_bound import solve_branch_bound
from .dp import solve_dp
from .greedy import solve_greedy
from .model import IntegerProgram, Solution
from .scipy_backend import scipy_available, solve_scipy

#: Registry of solver backends.  "branch_bound" is the default: exact and
#: dependency-free.  "greedy" is a heuristic lower bound.
BACKENDS: Dict[str, Callable[[IntegerProgram], Solution]] = {
    "branch_bound": solve_branch_bound,
    "dp": solve_dp,
    "greedy": solve_greedy,
    "scipy": solve_scipy,
}

DEFAULT_BACKEND = "branch_bound"


def solve(program: IntegerProgram, backend: str = DEFAULT_BACKEND,
          cross_check: bool = False) -> Solution:
    """Solve an integer program with the chosen backend.

    Parameters
    ----------
    program:
        The packing program.
    backend:
        One of ``branch_bound`` (default, exact), ``dp`` (exact, integer
        data only), ``greedy`` (heuristic lower bound) or ``scipy``
        (exact, requires scipy).
    cross_check:
        When True and scipy is available, exact backends are verified
        against scipy's HiGHS solver; a mismatch raises
        ``AssertionError``.  Intended for tests and debugging.
    """
    try:
        solver = BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {sorted(BACKENDS)}"
        ) from None
    solution = solver(program)
    if (cross_check and backend in ("branch_bound", "dp")
            and scipy_available()):
        reference = solve_scipy(program)
        if solution.status != reference.status:
            raise AssertionError(
                f"{backend} status {solution.status!r} != "
                f"scipy {reference.status!r}")
        if (solution.is_optimal
                and abs(solution.objective - reference.objective) > 1e-6):
            raise AssertionError(
                f"{backend} objective {solution.objective} != "
                f"scipy {reference.objective}")
    return solution
