"""Backend-dispatching facade over the stateful packing engine.

:func:`solve` keeps the historic stateless signature — one program, one
answer — but is now a thin shim over :class:`repro.ilp.engine
.PackingEngine`: it wraps the program's matrix in a one-shot
:class:`~repro.ilp.engine.PackingInstance` and resolves its rhs once.
Callers that re-solve the same matrix against changing capacities (the
DMM curve evaluation) should hold an engine instead and call
``resolve(rhs)`` per capacity vector.
"""

from __future__ import annotations

from typing import Callable, Dict

from .branch_bound import solve_branch_bound
from .dp import solve_dp
from .engine import PackingEngine, PackingInstance
from .greedy import solve_greedy
from .model import IntegerProgram, Solution
from .scipy_backend import solve_scipy

#: Registry of solver backends.  "branch_bound" is the default: exact and
#: dependency-free.  "greedy" is a heuristic lower bound.  The stateful
#: engine exposes the same names through
#: :data:`repro.ilp.engine.INCREMENTAL_BACKENDS`.
BACKENDS: Dict[str, Callable[[IntegerProgram], Solution]] = {
    "branch_bound": solve_branch_bound,
    "dp": solve_dp,
    "greedy": solve_greedy,
    "scipy": solve_scipy,
}

DEFAULT_BACKEND = "branch_bound"


def solve(
    program: IntegerProgram,
    backend: str = DEFAULT_BACKEND,
    cross_check: bool = False,
) -> Solution:
    """Solve an integer program with the chosen backend.

    Parameters
    ----------
    program:
        The packing program.
    backend:
        One of ``branch_bound`` (default, exact), ``dp`` (exact, integer
        data only), ``greedy`` (heuristic lower bound) or ``scipy``
        (exact, requires scipy).
    cross_check:
        When True and scipy is available, exact backends are verified
        against scipy's HiGHS solver; a mismatch raises
        ``AssertionError``.  Intended for tests and debugging.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {sorted(BACKENDS)}"
        )
    engine = PackingEngine(
        PackingInstance.from_program(program),
        backend=backend,
        cross_check=cross_check,
    )
    return engine.resolve(program.rhs)
