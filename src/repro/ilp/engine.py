"""Stateful incremental packing engine.

The Theorem 3 DMM computation solves the *same* packing matrix over and
over: along a ``dmm(k)`` curve only the ``Omega`` capacities (the rhs)
change, and they grow monotonically with ``k``.  The historic
``solve(program, backend)`` facade rebuilt and cold-solved every
instance; this module keeps the instance alive instead:

* :class:`PackingInstance` — the rhs-independent part of an integer
  program (objective, matrix, static bounds, names), built once;
* :class:`PackingEngine` — a per-instance solver with a
  ``resolve(rhs)`` API: results are memoized per rhs, every previously
  found packing is re-checked against the new capacities and seeds the
  branch-and-bound incumbent (often proving optimality at the root
  node), the simplex reuses its basis across the rhs-only changes, and
  the DP backend answers from a capacity-independent usage table.

All four registered backends (``branch_bound``, ``dp``, ``greedy``,
``scipy``) conform to the same incremental protocol, so they stay
interchangeable and cross-checkable; warm state never changes a result,
only the work counters.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .branch_bound import BranchBoundState, solve_branch_bound
from .dp import DpTable, _validate_caps
from .greedy import solve_greedy
from .model import IntegerProgram, Solution, empty_solution
from .scipy_backend import scipy_available, solve_scipy

#: Feasibility tolerance when re-checking stored packings against new
#: capacities.
FEASIBILITY_TOL = 1e-9

#: How many previous solutions the engine keeps as incumbent candidates.
LEDGER_LIMIT = 64


@dataclass
class EngineStats:
    """Work counters of one :class:`PackingEngine`.

    ``resolves`` counts every :meth:`PackingEngine.resolve` call;
    ``memo_hits`` the subset answered from the per-rhs memo without
    touching the backend.  Actual solves split into ``warm_starts``
    (seeded with a prior feasible packing) and ``cold_solves``; ``work``
    accumulates the backend-specific work units (nodes, states, steps).
    """

    resolves: int = 0
    memo_hits: int = 0
    warm_starts: int = 0
    cold_solves: int = 0
    work: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "resolves": self.resolves,
            "memo_hits": self.memo_hits,
            "warm_starts": self.warm_starts,
            "cold_solves": self.cold_solves,
            "work": self.work,
        }


class PackingInstance:
    """The rhs-independent description of a packing program.

    ``maximize c . x  subject to  A x <= b,  0 <= x <= u,  x integer``
    with ``A``, ``c``, ``u`` fixed and ``b`` supplied per
    :meth:`PackingEngine.resolve`.
    """

    def __init__(
        self,
        objective: Sequence[float],
        rows: Sequence[Sequence[float]],
        *,
        upper_bounds: Optional[Sequence[Optional[float]]] = None,
        names: Optional[Sequence[str]] = None,
    ):
        self.objective = [float(c) for c in objective]
        self.rows = [list(row) for row in rows]
        self.upper_bounds = None if upper_bounds is None else list(upper_bounds)
        self.names = None if names is None else list(names)
        # Validate shapes once through the program constructor.
        self.program([0.0] * len(self.rows))

    @classmethod
    def from_program(cls, program: IntegerProgram) -> "PackingInstance":
        """The instance underlying an :class:`IntegerProgram` (its rhs
        becomes the first ``resolve`` argument)."""
        return cls(
            program.objective,
            program.rows,
            upper_bounds=program.upper_bounds,
            names=program.names,
        )

    @property
    def num_variables(self) -> int:
        return len(self.objective)

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    def program(self, rhs: Sequence[float]) -> IntegerProgram:
        """Materialize the concrete program for one capacity vector."""
        return IntegerProgram(
            objective=self.objective,
            rows=self.rows,
            rhs=list(rhs),
            upper_bounds=self.upper_bounds,
            names=self.names,
        )

    def feasible(self, values: Sequence[float], rhs: Sequence[float]) -> bool:
        """Is ``values`` a feasible packing under capacities ``rhs``?"""
        if len(values) != self.num_variables:
            return False
        if self.upper_bounds is not None:
            for value, ub in zip(values, self.upper_bounds):
                if ub is not None and value > ub + FEASIBILITY_TOL:
                    return False
        support = [(j, v) for j, v in enumerate(values) if v]
        for row, b in zip(self.rows, rhs):
            if sum(row[j] * v for j, v in support) > b + FEASIBILITY_TOL:
                return False
        return True

    def engine(self, backend: str = "branch_bound", *, cross_check: bool = False
               ) -> "PackingEngine":
        """A fresh :class:`PackingEngine` over this instance."""
        return PackingEngine(self, backend=backend, cross_check=cross_check)


# ----------------------------------------------------------------------
# Incremental backend adapters
# ----------------------------------------------------------------------
class _BranchBoundBackend:
    """Branch-and-bound with persistent incumbent + node-LP state.

    Every ``resolve(rhs)`` runs the default best-first search of
    :func:`~repro.ilp.branch_bound.solve_branch_bound`: open-node
    relaxations are gathered and resolved in batches through
    ``IncrementalLp.solve_many`` over the shared ``[A; I]`` tableau
    carried in ``self._state`` — so whole DMM curves reuse one basis
    across both nodes and rhs points."""

    #: The engine only scans its incumbent ledger for backends that
    #: actually seed from it.
    uses_incumbent = True

    def __init__(self, instance: PackingInstance):
        self._instance = instance
        self._state = BranchBoundState()

    def resolve(
        self, rhs: Tuple[float, ...], incumbent: Optional[Solution]
    ) -> Solution:
        self._state.incumbent = incumbent
        return solve_branch_bound(self._instance.program(rhs), self._state)


class _DpBackend:
    """Exact DP over a capacity-independent usage table.

    The table layers do not depend on the rhs, so re-solves against
    covered capacities are pure scans; growth rebuilds with geometric
    headroom (see :class:`repro.ilp.dp.DpTable`).
    """

    uses_incumbent = False

    def __init__(self, instance: PackingInstance):
        self._instance = instance
        columns = []
        for j in range(instance.num_variables):
            column = []
            for row in instance.rows:
                a = row[j]
                if a < 0 or float(a) != math.floor(a):
                    raise ValueError(
                        "DP solver needs non-negative integer coefficients"
                    )
                column.append(int(a))
            columns.append(tuple(column))
        self._columns = columns
        self._zero_columns = [
            j for j, column in enumerate(columns) if all(a == 0 for a in column)
        ]
        bounds: List[Optional[int]] = []
        for j in range(instance.num_variables):
            explicit = None
            if instance.upper_bounds is not None:
                ub = instance.upper_bounds[j]
                if ub is not None and not math.isinf(ub):
                    explicit = int(math.floor(ub))
            bounds.append(explicit)
        self._bounds = bounds
        self._table = DpTable(instance.objective, columns, counts_bound=bounds)

    def resolve(
        self, rhs: Tuple[float, ...], incumbent: Optional[Solution]
    ) -> Solution:
        instance = self._instance
        n = instance.num_variables
        if n == 0:
            return empty_solution()
        caps = _validate_caps(rhs)
        for j in self._zero_columns:
            if instance.objective[j] > 0 and self._bounds[j] is None:
                return Solution("unbounded", math.inf, (), 0)
        self._table.ensure(caps)
        value, values = self._table.query(caps)
        for j in self._zero_columns:
            if instance.objective[j] > 0:
                values[j] = float(self._bounds[j])
                value += instance.objective[j] * values[j]
        solution = Solution("optimal", value, tuple(values), work=len(self._table))
        if not instance.feasible(solution.values, rhs):
            raise AssertionError("DP reconstruction produced infeasible packing")
        return solution


class _StatelessBackend:
    """Adapter giving the one-shot solvers the incremental protocol
    (the engine's per-rhs memo is their only reuse)."""

    uses_incumbent = False

    def __init__(self, instance: PackingInstance, solver):
        self._instance = instance
        self._solver = solver

    def resolve(
        self, rhs: Tuple[float, ...], incumbent: Optional[Solution]
    ) -> Solution:
        return self._solver(self._instance.program(rhs))


#: Factories of the incremental backend adapters, keyed like
#: :data:`repro.ilp.solver.BACKENDS`.
INCREMENTAL_BACKENDS: Dict[str, Callable[[PackingInstance], object]] = {
    "branch_bound": _BranchBoundBackend,
    "dp": _DpBackend,
    "greedy": lambda instance: _StatelessBackend(instance, solve_greedy),
    "scipy": lambda instance: _StatelessBackend(instance, solve_scipy),
}


class PackingEngine:
    """Stateful solver for one :class:`PackingInstance`.

    ``resolve(rhs)`` returns exactly what a cold
    ``solve(instance.program(rhs), backend)`` would (memoized per rhs);
    the retained state — previous packings as incumbent seeds, the
    previous LP basis, the DP usage table — only cuts the work of each
    re-solve.  ``cross_check=True`` verifies every exact solve against
    scipy's HiGHS when available.

    A per-engine lock serializes :meth:`resolve` and
    :meth:`lower_bound`: the backend adapters mutate tableau/incumbent
    state mid-solve, so an engine shared across threads (a warm
    :class:`~repro.analysis.twca.ChainTwcaResult` driven by concurrent
    service requests) must never be stepped by two threads at once.
    Distinct engines never contend — the lock is instance state, so the
    service's overlapping computes on different chains stay parallel.
    """

    #: Backends whose results are exact (and therefore cross-checkable).
    EXACT_BACKENDS = ("branch_bound", "dp", "scipy")

    def __init__(
        self,
        instance: PackingInstance,
        backend: str = "branch_bound",
        *,
        cross_check: bool = False,
    ):
        try:
            factory = INCREMENTAL_BACKENDS[backend]
        except KeyError:
            raise ValueError(
                f"unknown backend {backend!r}; "
                f"choose from {sorted(INCREMENTAL_BACKENDS)}"
            ) from None
        self.instance = instance
        self.backend = backend
        self.cross_check = cross_check
        self.stats = EngineStats()
        self._lock = threading.RLock()
        self._solver = factory(instance)
        self._memo: Dict[Tuple[float, ...], Solution] = {}
        self._ledger: List[Solution] = []
        # One-slot cache: ``lower_bound`` and the subsequent ``resolve``
        # of the same rhs share a single ledger scan.
        self._incumbent_cache: Optional[
            Tuple[Tuple[float, ...], Optional[Solution]]
        ] = None

    def resolve(self, rhs: Sequence[float]) -> Solution:
        """Solve the instance against capacities ``rhs``."""
        key = tuple(float(b) for b in rhs)
        if len(key) != self.instance.num_rows:
            raise ValueError(
                f"{len(key)} capacities for {self.instance.num_rows} rows"
            )
        with self._lock:
            return self._resolve_locked(key)

    def _resolve_locked(self, key: Tuple[float, ...]) -> Solution:
        self.stats.resolves += 1
        hit = self._memo.get(key)
        if hit is not None:
            self.stats.memo_hits += 1
            return hit
        # Only backends that seed from prior packings pay the ledger
        # scan; for the rest ``warm_starts`` stays honestly at zero.
        incumbent = (
            self._incumbent_for(key) if self._solver.uses_incumbent else None
        )
        if incumbent is not None:
            self.stats.warm_starts += 1
        else:
            self.stats.cold_solves += 1
        solution = self._solver.resolve(key, incumbent)
        self.stats.work += solution.work
        if (
            self.cross_check
            and self.backend in ("branch_bound", "dp")
            and scipy_available()
        ):
            reference = solve_scipy(self.instance.program(key))
            if solution.status != reference.status:
                raise AssertionError(
                    f"{self.backend} status {solution.status!r} != "
                    f"scipy {reference.status!r}"
                )
            if (
                solution.is_optimal
                and abs(solution.objective - reference.objective) > 1e-6
            ):
                raise AssertionError(
                    f"{self.backend} objective {solution.objective} != "
                    f"scipy {reference.objective}"
                )
        self._memo[key] = solution
        if solution.is_optimal and solution.values:
            self._ledger.append(solution)
            if len(self._ledger) > LEDGER_LIMIT:
                self._ledger.pop(0)
            self._incumbent_cache = None
        return solution

    def lower_bound(self, rhs: Sequence[float]) -> Optional[float]:
        """The best previously packed objective still feasible under
        ``rhs`` — a sound lower bound on ``resolve(rhs).objective`` for
        exact backends (capacity growth only enlarges the feasible
        set), available without solving anything."""
        if self.backend not in self.EXACT_BACKENDS:
            return None
        with self._lock:
            incumbent = self._incumbent_for(tuple(float(b) for b in rhs))
        return None if incumbent is None else incumbent.objective

    def _incumbent_for(
        self, rhs: Tuple[float, ...]
    ) -> Optional[Solution]:
        cached = self._incumbent_cache
        if cached is not None and cached[0] == rhs:
            return cached[1]
        # Newest-first: along a monotone capacity schedule the most
        # recent packings carry the largest objectives, so the
        # value-based skip below prunes most feasibility checks.
        best: Optional[Solution] = None
        for solution in reversed(self._ledger):
            if best is not None and solution.objective <= best.objective:
                continue
            if self.instance.feasible(solution.values, rhs):
                best = solution
        self._incumbent_cache = (rhs, best)
        return best

    def __repr__(self) -> str:
        return (
            f"PackingEngine(backend={self.backend!r}, "
            f"vars={self.instance.num_variables}, "
            f"rows={self.instance.num_rows}, "
            f"resolves={self.stats.resolves})"
        )
