"""Weakly-hard constraints and their lattice (Bernat, Burns, Llamosi).

A deadline miss model is the bridge between TWCA and the classical
weakly-hard constraint types:

* ``AnyMisses(n, m)`` — at most ``n`` misses in any window of ``m``
  consecutive invocations (written  "n-overbar choose m" by Bernat et
  al.; equivalent to the DMM condition ``dmm(m) <= n``).
* ``MKFirm(m, k)`` — at least ``m`` hits in any ``k`` consecutive
  invocations (Hamdaoui & Ramanathan's (m,k)-firm guarantee), i.e.
  ``dmm(k) <= k - m``.
* ``ConsecutiveMisses(n)`` — never more than ``n`` consecutive misses,
  the special case ``AnyMisses(n, n + 1)``.

The partial order ``constraint A implies constraint B`` follows Bernat's
Theorem 8-style arithmetic and is implemented exactly for these forms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..analysis.dmm import DeadlineMissModel


@dataclass(frozen=True)
class AnyMisses:
    """At most ``misses`` deadline misses in any ``window`` consecutive
    invocations."""

    misses: int
    window: int

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not 0 <= self.misses <= self.window:
            raise ValueError("need 0 <= misses <= window")

    def satisfied_by(self, dmm: DeadlineMissModel) -> bool:
        """Check against a deadline miss model."""
        return dmm(self.window) <= self.misses

    def implies(self, other: "AnyMisses") -> bool:
        """Exact implication test between two any-misses constraints.

        ``(n, m)`` implies ``(n', m')`` iff every miss pattern legal for
        the former is legal for the latter.  The worst density the left
        constraint admits over a window of ``m'`` is obtained by tiling
        windows of ``m`` with ``n`` misses each packed at the edges:
        ``ceil(m' / m) * n`` misses can always be forced when
        ``m' >= m``; for ``m' < m`` the left constraint still admits
        ``min(n, m')`` misses inside the smaller window.
        """
        if other.window <= self.window:
            return min(self.misses, other.window) <= other.misses
        full, remainder = divmod(other.window, self.window)
        worst = full * self.misses + min(self.misses, remainder)
        return worst <= other.misses

    def __str__(self) -> str:
        return f"AnyMisses({self.misses} in {self.window})"


@dataclass(frozen=True)
class MKFirm:
    """At least ``hits`` met deadlines in any ``window`` consecutive
    invocations ((m,k)-firm)."""

    hits: int
    window: int

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not 0 <= self.hits <= self.window:
            raise ValueError("need 0 <= hits <= window")

    def as_any_misses(self) -> AnyMisses:
        """The equivalent miss-form constraint."""
        return AnyMisses(self.window - self.hits, self.window)

    def satisfied_by(self, dmm: DeadlineMissModel) -> bool:
        return self.as_any_misses().satisfied_by(dmm)

    def __str__(self) -> str:
        return f"MKFirm({self.hits} of {self.window})"


def consecutive_misses(n: int) -> AnyMisses:
    """The 'never more than ``n`` consecutive misses' constraint."""
    if n < 0:
        raise ValueError("n must be >= 0")
    return AnyMisses(n, n + 1)


def strongest_any_misses(
    dmm: DeadlineMissModel, windows: Iterable[int]
) -> List[AnyMisses]:
    """The tightest ``AnyMisses`` constraint guaranteed per window size
    — directly readable from the DMM."""
    return [AnyMisses(dmm(m), m) for m in windows]


def miss_pattern_allowed(pattern: Iterable[bool], constraint) -> bool:
    """Check an explicit miss pattern (True = miss) against a
    constraint (:class:`AnyMisses` or :class:`MKFirm`); used by property
    tests to validate ``implies`` and by simulation cross-checks."""
    if isinstance(constraint, MKFirm):
        constraint = constraint.as_any_misses()
    flags = list(pattern)
    window = constraint.window
    if len(flags) < window:
        return sum(flags) <= constraint.misses
    running = sum(flags[:window])
    if running > constraint.misses:
        return False
    for i in range(window, len(flags)):
        running += flags[i] - flags[i - window]
        if running > constraint.misses:
            return False
    return True
