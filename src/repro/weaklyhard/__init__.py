"""Weakly-hard constraint types and DMM-based verification."""

from .mk import (
    AnyMisses,
    MKFirm,
    consecutive_misses,
    miss_pattern_allowed,
    strongest_any_misses,
)
from .patterns import longest_burst, max_miss_density, verify_pattern, worst_pattern

__all__ = [
    "AnyMisses",
    "MKFirm",
    "consecutive_misses",
    "strongest_any_misses",
    "miss_pattern_allowed",
    "verify_pattern",
    "worst_pattern",
    "max_miss_density",
    "longest_burst",
]
