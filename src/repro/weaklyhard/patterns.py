"""Miss-pattern synthesis from deadline miss models.

A DMM tells a control engineer *how many* deadlines can be missed; for
stability arguments they also need *which patterns* are possible.  This
module constructs concrete worst-case-style miss patterns consistent
with a DMM staircase and verifies patterns against it:

* :func:`verify_pattern` — does an explicit pattern respect ``dmm(k)``
  for every window size?
* :func:`worst_pattern` — a greedy densest-prefix pattern consistent
  with the DMM (a *witness* of achievable miss density; greedy is
  optimal for a single window constraint and a strong lower bound for
  staircases);
* :func:`max_miss_density` — the witness' long-run miss share;
* :func:`longest_burst` — the longest consecutive-miss run any
  DMM-consistent pattern can contain.
"""

from __future__ import annotations

from typing import List, Sequence

from ..analysis.dmm import DeadlineMissModel


def verify_pattern(
    pattern: Sequence[bool], dmm: DeadlineMissModel, max_window: int = 0
) -> bool:
    """True iff every window of every size ``k`` within ``pattern``
    contains at most ``dmm(k)`` misses.

    ``max_window`` restricts the checked window sizes (0 = up to the
    pattern length).  Checking every k is quadratic in the length,
    which is fine for the pattern lengths control analyses use.
    """
    flags = [bool(f) for f in pattern]
    length = len(flags)
    limit = length if max_window <= 0 else min(max_window, length)
    prefix = [0]
    for flag in flags:
        prefix.append(prefix[-1] + flag)
    for k in range(1, limit + 1):
        budget = dmm(k)
        if budget >= k:
            continue  # no constraint at this window size
        for start in range(length - k + 1):
            if prefix[start + k] - prefix[start] > budget:
                return False
    return True


def worst_pattern(dmm: DeadlineMissModel, length: int) -> List[bool]:
    """A maximal-prefix-greedy miss pattern consistent with ``dmm``.

    Position by position, a miss is placed whenever the resulting
    prefix still verifies.  The result is always a valid witness
    (:func:`verify_pattern` holds); for a single binding window size
    the greedy is exactly optimal.
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    # Pre-compute the binding window constraints once.
    constraints = []
    for k in range(1, length + 1):
        budget = dmm(k)
        if budget < k:
            constraints.append((k, budget))
    flags: List[bool] = []
    counts = [0]  # prefix sums
    for position in range(length):
        candidate_ok = True
        for k, budget in constraints:
            start = max(0, position + 1 - k)
            window_misses = counts[-1] - counts[start] + 1
            if window_misses > budget:
                candidate_ok = False
                break
        flags.append(candidate_ok)
        counts.append(counts[-1] + (1 if candidate_ok else 0))
    return flags


def max_miss_density(dmm: DeadlineMissModel, horizon: int = 1000) -> float:
    """Miss share of the greedy witness over ``horizon`` activations —
    a lower bound on the worst density the DMM admits, and usually
    tight."""
    pattern = worst_pattern(dmm, horizon)
    return sum(pattern) / horizon


def longest_burst(dmm: DeadlineMissModel, probe: int = 1000) -> int:
    """The longest run of consecutive misses any DMM-consistent pattern
    can contain: the largest ``n`` with ``dmm(n) >= n``."""
    best = 0
    for n in range(1, probe + 1):
        if dmm(n) >= n:
            best = n
        else:
            break
    return best
