"""Seeded benchmark corpora: reproducible system populations at scale.

A :class:`CorpusSpec` pins everything that determines the population —
family (UUniFast chain systems or WATERS-profile automotive systems),
count, seed, utilization range, shape knobs — and
:func:`generate_corpus` streams the systems to disk with constant
memory: each system is generated, canonically serialized, written under
``<root>/systems/<group>/sys-<index>.json`` (grouped directories of
:data:`GROUP_SIZE` files, so ~10^6 systems stay navigable), and
recorded as one line of a JSONL manifest whose running SHA-256 becomes
the corpus identity.

Determinism is the contract: entry ``index`` is drawn from its own
``random.Random(f"{seed}:{index}")`` stream, so the same spec produces
byte-identical system files — and therefore the same
``manifest_digest`` — regardless of generation order, process count,
interruption/regeneration, or the active numeric kernel (the
generators are pure Python; the benchmark suite asserts the digest
under both kernels).

:class:`CorpusManifest` reopens a generated corpus: iterate entries,
materialize systems, or :meth:`~CorpusManifest.verify` the whole tree
against the recorded digests.  ``repro corpus generate``/``verify`` are
the CLI fronts; ``repro shard --corpus`` feeds a corpus to the sharded
batch coordinator.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..model import System
from ..model.serialization import canonical_system_json, system_from_json
from .automotive import AutomotiveConfig, generate_feasible_automotive
from .generator import GeneratorConfig, generate_feasible_system

#: System files per group directory.
GROUP_SIZE = 1000

#: Manifest schema version (bumped on incompatible layout changes).
MANIFEST_FORMAT = 1

FAMILIES = ("uunifast", "waters")


class CorpusError(RuntimeError):
    """A corpus is malformed, inconsistent, or failed verification."""


@dataclass(frozen=True)
class CorpusSpec:
    """Everything that determines a corpus population.

    ``utilization`` is an inclusive range; each system draws its own
    target utilization uniformly from it (the UUniFast split then
    distributes that target over the chains).  ``chains`` and
    ``tasks_per_chain`` shape every system; family-specific knobs keep
    their generator defaults.
    """

    count: int
    seed: int = 0
    family: str = "uunifast"
    utilization: Tuple[float, float] = (0.5, 0.7)
    chains: int = 3
    tasks_per_chain: Tuple[int, int] = (2, 5)

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.family not in FAMILIES:
            raise ValueError(
                f"unknown corpus family {self.family!r}; choose from {FAMILIES}"
            )
        low, high = self.utilization
        if not (0.0 < low <= high):
            raise ValueError(f"bad utilization range {self.utilization!r}")
        if self.chains < 1:
            raise ValueError(f"chains must be >= 1, got {self.chains}")
        lo, hi = self.tasks_per_chain
        if not (1 <= lo <= hi):
            raise ValueError(f"bad tasks_per_chain range {self.tasks_per_chain!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "seed": self.seed,
            "family": self.family,
            "utilization": list(self.utilization),
            "chains": self.chains,
            "tasks_per_chain": list(self.tasks_per_chain),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CorpusSpec":
        known = {
            "count",
            "seed",
            "family",
            "utilization",
            "chains",
            "tasks_per_chain",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown CorpusSpec fields: {sorted(unknown)}")
        if "count" not in data:
            raise ValueError("CorpusSpec requires 'count'")
        return cls(
            count=int(data["count"]),
            seed=int(data.get("seed", 0)),
            family=data.get("family", "uunifast"),
            utilization=tuple(data.get("utilization", (0.5, 0.7))),
            chains=int(data.get("chains", 3)),
            tasks_per_chain=tuple(data.get("tasks_per_chain", (2, 5))),
        )


def entry_id(index: int) -> str:
    """The stable id (and system name) of corpus entry ``index``."""
    return f"sys-{index:08d}"


def entry_relpath(index: int) -> str:
    """Path of entry ``index`` relative to the corpus root."""
    group = index // GROUP_SIZE
    return os.path.join("systems", f"{group:05d}", f"{entry_id(index)}.json")


def generate_entry(spec: CorpusSpec, index: int) -> System:
    """Generate corpus entry ``index`` — a pure function of
    ``(spec, index)``.

    The per-entry RNG is seeded with ``f"{seed}:{index}"`` (string
    seeding hashes through SHA-512, stable across processes and Python
    versions), so entries are independent: any subset can be generated
    in any order, on any host, with identical bytes.
    """
    rng = random.Random(f"{spec.seed}:{index}")
    target = rng.uniform(*spec.utilization)
    if spec.family == "uunifast":
        config = GeneratorConfig(
            chains=spec.chains,
            tasks_per_chain=spec.tasks_per_chain,
            utilization=target,
        )
        system = generate_feasible_system(rng, config)
    else:
        auto = AutomotiveConfig(
            chains=spec.chains,
            tasks_per_chain=spec.tasks_per_chain,
            utilization=target,
        )
        system = generate_feasible_automotive(rng, auto)
    system.name = entry_id(index)
    return system


@dataclass
class CorpusManifest:
    """A generated corpus on disk: spec, entry count, identity digest.

    ``manifest_digest`` is the SHA-256 over the raw bytes of every
    ``manifest.jsonl`` line in order — the single value two hosts
    compare to agree they generated the same corpus.
    """

    root: str
    spec: CorpusSpec
    count: int
    manifest_digest: str
    format: int = MANIFEST_FORMAT
    _entries: Optional[List[Dict[str, Any]]] = field(default=None, repr=False)

    @property
    def header_path(self) -> str:
        return os.path.join(self.root, "manifest.json")

    @property
    def lines_path(self) -> str:
        return os.path.join(self.root, "manifest.jsonl")

    @classmethod
    def load(cls, root: str) -> "CorpusManifest":
        header_path = os.path.join(str(root), "manifest.json")
        try:
            with open(header_path, "r", encoding="utf-8") as handle:
                header = json.load(handle)
        except FileNotFoundError:
            raise CorpusError(f"no corpus manifest at {header_path}") from None
        except json.JSONDecodeError as exc:
            raise CorpusError(f"corrupt corpus header {header_path}: {exc}") from exc
        if header.get("format") != MANIFEST_FORMAT:
            raise CorpusError(
                f"unsupported corpus format {header.get('format')!r} "
                f"(expected {MANIFEST_FORMAT})"
            )
        return cls(
            root=str(root),
            spec=CorpusSpec.from_dict(header["spec"]),
            count=int(header["count"]),
            manifest_digest=header["manifest_digest"],
            format=int(header["format"]),
        )

    def entries(self) -> Iterator[Dict[str, Any]]:
        """The manifest lines, in index order (streamed from disk)."""
        with open(self.lines_path, "r", encoding="utf-8") as handle:
            for line in handle:
                if line.strip():
                    yield json.loads(line)

    def paths(self, limit: Optional[int] = None) -> List[str]:
        """Absolute system-file paths of the first ``limit`` entries."""
        selected = []
        for entry in self.entries():
            if limit is not None and len(selected) >= limit:
                break
            selected.append(os.path.join(self.root, entry["path"]))
        return selected

    def systems(self, limit: Optional[int] = None) -> Iterator[System]:
        """Materialize entries as systems, in index order (streamed)."""
        for path in self.paths(limit):
            with open(path, "r", encoding="utf-8") as handle:
                yield system_from_json(handle.read())

    def verify(self, *, limit: Optional[int] = None) -> int:
        """Re-check the corpus against its recorded identity.

        Recomputes the manifest digest from the JSONL bytes and the
        SHA-256 of every referenced system file (the first ``limit``
        files when given — a sampled check for huge corpora).  Returns
        the number of files checked; raises :class:`CorpusError` on the
        first mismatch.
        """
        digest = hashlib.sha256()
        entries = 0
        with open(self.lines_path, "rb") as handle:
            for line in handle:
                digest.update(line)
                if line.strip():
                    entries += 1
        if entries != self.count:
            raise CorpusError(
                f"manifest lists {entries} entries, header says {self.count}"
            )
        if digest.hexdigest() != self.manifest_digest:
            raise CorpusError(
                f"manifest digest mismatch: recorded "
                f"{self.manifest_digest[:16]}..., recomputed "
                f"{digest.hexdigest()[:16]}..."
            )
        checked = 0
        for entry in self.entries():
            if limit is not None and checked >= limit:
                break
            path = os.path.join(self.root, entry["path"])
            try:
                with open(path, "rb") as handle:
                    actual = hashlib.sha256(handle.read()).hexdigest()
            except FileNotFoundError:
                raise CorpusError(f"missing system file {path}") from None
            if actual != entry["digest"]:
                raise CorpusError(
                    f"system file {path} digest mismatch "
                    f"(entry {entry['id']})"
                )
            checked += 1
        return checked


def generate_corpus(
    spec: CorpusSpec,
    root: str,
    *,
    progress: Optional[Any] = None,
    progress_every: int = 10_000,
) -> CorpusManifest:
    """Generate the corpus under ``root`` (created; must not already
    hold a manifest) and return its manifest.

    Streaming: one system in memory at a time, manifest lines appended
    as they are produced, the identity digest accumulated over the
    written bytes — generating 10^6 systems costs disk, not RAM.
    ``progress`` is an optional
    :class:`~repro.runner.progress.TaggedLog`-like object (``.line``)
    receiving a note every ``progress_every`` entries.
    """
    root = str(root)
    os.makedirs(root, exist_ok=True)
    header_path = os.path.join(root, "manifest.json")
    lines_path = os.path.join(root, "manifest.jsonl")
    if os.path.exists(header_path):
        raise CorpusError(f"corpus already exists at {root}")
    digest = hashlib.sha256()
    with open(lines_path, "w", encoding="utf-8", newline="\n") as manifest:
        for index in range(spec.count):
            system = generate_entry(spec, index)
            payload = canonical_system_json(system)
            relpath = entry_relpath(index)
            path = os.path.join(root, relpath)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            data = payload.encode("utf-8")
            with open(path, "wb") as handle:
                handle.write(data)
            entry = {
                "index": index,
                "id": entry_id(index),
                "path": relpath,
                "digest": hashlib.sha256(data).hexdigest(),
            }
            line = json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n"
            manifest.write(line)
            digest.update(line.encode("utf-8"))
            if progress is not None and (index + 1) % progress_every == 0:
                progress.line(f"generated {index + 1}/{spec.count} systems")
    header = {
        "format": MANIFEST_FORMAT,
        "spec": spec.to_dict(),
        "count": spec.count,
        "manifest_digest": digest.hexdigest(),
    }
    with open(header_path, "w", encoding="utf-8") as handle:
        json.dump(header, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return CorpusManifest(
        root=root,
        spec=spec,
        count=spec.count,
        manifest_digest=digest.hexdigest(),
    )
