"""Automotive-flavoured workload generation.

The paper's case study comes from Thales (avionics-like); the wider
weakly-hard literature evaluates on automotive workloads whose shape is
standardized by the WATERS/Kramer-et-al. benchmark: tasks cluster on a
small set of periods (1, 2, 5, 10, 20, 50, 100, 200, 1000 ms) with a
characteristic share per period, plus rare interrupt-driven work.

This generator produces chain systems with that period profile so the
benchmarks can sweep realistic populations beyond the single case
study.  Times are in microseconds (integers).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..arrivals import PeriodicModel, SporadicBurstModel
from ..model import ChainKind, System, SystemBuilder
from .generator import uunifast

#: WATERS benchmark period pool (microseconds) and their share of tasks.
PERIOD_PROFILE: Sequence[Tuple[int, float]] = (
    (1_000, 0.03),
    (2_000, 0.02),
    (5_000, 0.02),
    (10_000, 0.25),
    (20_000, 0.25),
    (50_000, 0.03),
    (100_000, 0.20),
    (200_000, 0.15),
    (1_000_000, 0.05),
)


@dataclass
class AutomotiveConfig:
    """Knobs of the automotive generator."""

    chains: int = 5
    tasks_per_chain: Sequence[int] = (3, 6)
    utilization: float = 0.55
    overload_chains: int = 1
    overload_burst: int = 2
    #: overload inter-burst distance as a multiple of the longest period
    overload_distance_factor: float = 5.0
    overload_utilization: float = 0.03
    deadline_factor: float = 1.0


def draw_period(rng: random.Random) -> int:
    """Sample a period from the WATERS profile."""
    point = rng.random()
    cumulative = 0.0
    for period, share in PERIOD_PROFILE:
        cumulative += share
        if point <= cumulative:
            return period
    return PERIOD_PROFILE[-1][0]


def generate_automotive_system(
    rng: random.Random, config: AutomotiveConfig = None
) -> System:
    """A chain system with WATERS-style periods.

    Each chain gets one period from the profile (chains inherit the
    rate of their trigger), UUniFast utilization split across chains
    and across tasks within a chain, and globally unique priorities
    assigned rate-monotonically with random tie-breaks (shorter period
    = higher priority — the common automotive configuration).
    """
    config = config or AutomotiveConfig()
    lengths = [rng.randint(*config.tasks_per_chain) for _ in range(config.chains)]
    periods = [draw_period(rng) for _ in range(config.chains)]
    chain_utils = uunifast(rng, config.chains, config.utilization)

    # Unique priorities: overload (interrupt-driven diagnostics) on
    # top, then rate-monotonic bands per chain (shorter period higher).
    order = sorted(range(config.chains), key=lambda i: (periods[i], rng.random()))
    total_tasks = sum(lengths)
    overload_tasks = config.overload_chains * config.overload_burst
    next_priority = total_tasks + overload_tasks
    overload_bands: List[List[int]] = []
    for _ in range(config.overload_chains):
        band = []
        for _ in range(config.overload_burst):
            band.append(next_priority)
            next_priority -= 1
        overload_bands.append(band)
    priorities: Dict[int, List[int]] = {}
    for chain_index in order:
        band = []
        for _ in range(lengths[chain_index]):
            band.append(next_priority)
            next_priority -= 1
        priorities[chain_index] = band

    builder = SystemBuilder("automotive")
    for index in range(config.chains):
        period = periods[index]
        budget = chain_utils[index] * period
        shares = uunifast(rng, lengths[index], 1.0)
        builder.chain(
            f"ecu_chain_{index}",
            PeriodicModel(float(period)),
            deadline=config.deadline_factor * period,
            kind=ChainKind.SYNCHRONOUS,
        )
        for t in range(lengths[index]):
            wcet = max(1.0, round(budget * shares[t]))
            builder.task(f"ecu_chain_{index}.t{t}", priorities[index][t], float(wcet))

    longest = max(periods)
    for ov in range(config.overload_chains):
        distance = config.overload_distance_factor * longest
        inner = max(1.0, longest / 10)
        budget = config.overload_utilization * distance / config.overload_chains
        builder.chain(
            f"diag_{ov}",
            SporadicBurstModel(inner, config.overload_burst, float(distance)),
            overload=True,
        )
        for t in range(config.overload_burst):
            wcet = max(1.0, round(budget / config.overload_burst))
            builder.task(f"diag_{ov}.t{t}", overload_bands[ov][t], float(wcet))
    return builder.build()


def generate_feasible_automotive(
    rng: random.Random, config: AutomotiveConfig = None, attempts: int = 50
) -> System:
    """Re-draw until total utilization stays below 1."""
    for _ in range(attempts):
        system = generate_automotive_system(rng, config)
        if system.utilization() < 0.98:
            return system
    raise RuntimeError("no feasible automotive system found")
