"""Priority-assignment sampling (Experiment 2).

The paper stresses its analysis by randomly permuting the case study's
priority assignment 1000 times and computing ``dmm(10)`` for sigma_c and
sigma_d under every permutation.  These helpers produce such permutations
for any system.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterator, List, Tuple

from ..model import System


def priority_values(system: System) -> List[float]:
    """The multiset of priorities currently used by ``system``."""
    return sorted(task.priority for task in system.tasks)


def random_assignment(system: System, rng: random.Random) -> Dict[str, float]:
    """A uniformly random permutation of the system's existing priority
    values over its tasks (task name -> priority)."""
    values = priority_values(system)
    rng.shuffle(values)
    return {task.name: value for task, value in zip(system.tasks, values)}


def random_systems(system: System, count: int, rng: random.Random) -> Iterator[System]:
    """``count`` fresh systems with random priority permutations."""
    for _ in range(count):
        yield system.with_priorities(random_assignment(system, rng))


def labeled_random_systems(
    system: System, count: int, seed: int = 2017
) -> List[Tuple[str, System]]:
    """``count`` random priority permutations with stable sweep labels.

    The batch runner and the ``repro batch --random`` CLI consume
    (label, system) pairs; labels are ``sample-0000`` ... so that the
    deterministic JSON export of a sweep is self-describing.  The same
    ``seed`` always yields the same sweep.
    """
    rng = random.Random(seed)
    return [
        (f"sample-{index:04d}", candidate)
        for index, candidate in enumerate(random_systems(system, count, rng))
    ]


def exhaustive_assignments(
    system: System, limit: int = 1_000_000
) -> Iterator[Dict[str, float]]:
    """Every permutation of the priority values (small systems only).

    Raises ``ValueError`` when the permutation count exceeds ``limit``.
    """
    tasks = system.tasks
    values = priority_values(system)
    total = 1
    for i in range(2, len(values) + 1):
        total *= i
        if total > limit:
            raise ValueError(f"{len(values)}! permutations exceed the limit {limit}")
    for permutation in itertools.permutations(values):
        yield {task.name: value for task, value in zip(tasks, permutation)}
