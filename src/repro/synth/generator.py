"""Random system generation for wider synthetic evaluation.

The paper evaluates on the case study plus priority permutations of it.
To exercise the library beyond 13 tasks we generate random chain systems
with controlled utilization, using the UUniFast algorithm for utilization
splitting — the standard generator in schedulability studies.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..arrivals import PeriodicModel, SporadicModel
from ..model import ChainKind, System, SystemBuilder


@dataclass
class GeneratorConfig:
    """Knobs of the random system generator.

    Attributes
    ----------
    chains:
        Number of typical (analyzed) chains.
    overload_chains:
        Number of sporadic overload chains.
    tasks_per_chain:
        Inclusive range for the chain length.
    utilization:
        Target total utilization of the typical chains.
    overload_utilization:
        Target long-run utilization of the overload chains (kept small:
        overload is *rare* by assumption).
    period_range:
        Inclusive range of typical chain periods (log-uniform).
    overload_distance_factor:
        Overload minimum inter-arrival = factor x max typical period.
    deadline_factor:
        Chain deadline = factor x period.
    asynchronous_fraction:
        Probability that a typical chain is asynchronous.
    integral:
        Round WCETs and periods to integers (analysis in N, as in the
        paper).
    """

    chains: int = 3
    overload_chains: int = 1
    tasks_per_chain: Sequence[int] = (2, 5)
    utilization: float = 0.6
    overload_utilization: float = 0.05
    period_range: Sequence[float] = (100.0, 1000.0)
    overload_distance_factor: float = 3.0
    deadline_factor: float = 1.0
    asynchronous_fraction: float = 0.0
    integral: bool = True


def uunifast(rng: random.Random, count: int, total: float) -> List[float]:
    """UUniFast: ``count`` utilizations summing to ``total``, uniformly
    distributed over the simplex (Bini & Buttazzo)."""
    if count < 1:
        raise ValueError("count must be >= 1")
    utilizations = []
    remaining = total
    for i in range(1, count):
        nxt = remaining * rng.random() ** (1.0 / (count - i))
        utilizations.append(remaining - nxt)
        remaining = nxt
    utilizations.append(remaining)
    return utilizations


def generate_system(
    rng: random.Random, config: Optional[GeneratorConfig] = None
) -> System:
    """Generate a random chain system per ``config``.

    Priorities are a random permutation of ``1..total_tasks``; WCETs are
    split within each chain by a second UUniFast draw so the chain meets
    its utilization budget.
    """
    config = config or GeneratorConfig()
    total_chains = config.chains + config.overload_chains
    if total_chains < 1:
        raise ValueError("need at least one chain")

    lengths = [
        rng.randint(config.tasks_per_chain[0], config.tasks_per_chain[1])
        for _ in range(total_chains)
    ]
    total_tasks = sum(lengths)
    priorities = list(range(1, total_tasks + 1))
    rng.shuffle(priorities)
    priority_iter = iter(priorities)

    chain_utils = uunifast(rng, config.chains, config.utilization)
    builder = SystemBuilder(f"random-{rng.random():.6f}")

    low, high = config.period_range
    max_period = 0.0
    for index in range(config.chains):
        period = math.exp(rng.uniform(math.log(low), math.log(high)))
        if config.integral:
            period = float(max(2, round(period)))
        max_period = max(max_period, period)
        budget = chain_utils[index] * period
        shares = uunifast(rng, lengths[index], 1.0)
        kind = (
            ChainKind.ASYNCHRONOUS
            if rng.random() < config.asynchronous_fraction
            else ChainKind.SYNCHRONOUS
        )
        builder.chain(
            f"chain_{index}",
            PeriodicModel(period),
            deadline=max(1.0, config.deadline_factor * period),
            kind=kind,
        )
        for t in range(lengths[index]):
            wcet = budget * shares[t]
            if config.integral:
                wcet = float(max(0, round(wcet)))
            builder.task(f"chain_{index}.t{t}", next(priority_iter), wcet)

    if config.overload_chains:
        per_overload = config.overload_utilization / config.overload_chains
        for index in range(config.overload_chains):
            chain_id = config.chains + index
            distance = config.overload_distance_factor * max_period
            if config.integral:
                distance = float(max(2, round(distance)))
            budget = per_overload * distance
            shares = uunifast(rng, lengths[chain_id], 1.0)
            builder.chain(f"overload_{index}", SporadicModel(distance), overload=True)
            for t in range(lengths[chain_id]):
                wcet = budget * shares[t]
                if config.integral:
                    wcet = float(max(1, round(wcet)))
                builder.task(f"overload_{index}.t{t}", next(priority_iter), wcet)

    return builder.build()


def generate_feasible_system(
    rng: random.Random, config: Optional[GeneratorConfig] = None, attempts: int = 50
) -> System:
    """Like :func:`generate_system` but re-draws until total utilization
    (including overload) stays below 1 — busy windows then provably
    close and the analyses terminate."""
    last_error: Optional[Exception] = None
    for _ in range(attempts):
        try:
            system = generate_system(rng, config)
        except ValueError as exc:  # degenerate draw (e.g. empty chain)
            last_error = exc
            continue
        if system.utilization() < 0.999:
            return system
    raise RuntimeError(
        f"no feasible system in {attempts} attempts (last error: {last_error})"
    )
