"""Deterministic soak-scale simulation workloads.

The simulator's numpy calendar backend retires *isolated* activations
(idle processor before and after) in batch array operations; realistic
long-horizon traces are exactly that — moderate utilization with
occasional contention bursts.  This module builds such a workload
deterministically: co-prime-ish integer periods (so release collisions
are rare and the activation pattern never locks into a short cycle),
golden-ratio staggered stream offsets, and a utilization low enough
that most instances run alone while preemption clusters still occur
whenever the staggered streams drift into alignment.

Used by the ``sim_soak`` section of ``bench_twca_hotpath`` and the
kernel parity tests; everything is a pure function of the arguments,
so two runs produce byte-identical systems and streams.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..model import ChainKind, System, Task, TaskChain

#: Pairwise co-prime periods (primes), ascending — rate-monotonic
#: priorities fall out of the pool order.
_PERIOD_POOL = (
    97,
    131,
    173,
    211,
    257,
    313,
    367,
    419,
    479,
    541,
    601,
    659,
    733,
    809,
    863,
    941,
)

#: Fractional part of the golden ratio; multiples mod 1 spread stream
#: offsets as evenly as possible (three-distance theorem).
_GOLDEN = 0.6180339887498949


def soak_system(
    chains: int = 12,
    tasks_per_chain: int = 3,
    utilization: float = 0.08,
    name: str = "soak",
) -> System:
    """A deterministic system tuned for soak simulation.

    ``chains`` periodic chains with pairwise co-prime periods drawn
    from a fixed prime pool, rate-monotonic priorities, alternating
    synchronous/asynchronous semantics, and total utilization
    ``utilization`` split evenly across chains (tasks within a chain
    get linearly growing shares).  Deadlines sit at twice the chain's
    demand, so isolated instances always meet them and only contention
    clusters produce misses — giving the miss metrics something to
    count.
    """
    from ..arrivals import PeriodicModel

    if not 1 <= chains <= len(_PERIOD_POOL):
        raise ValueError(f"chains must lie in [1, {len(_PERIOD_POOL)}], got {chains}")
    if tasks_per_chain < 1:
        raise ValueError("tasks_per_chain must be positive")
    if not 0 < utilization < 1:
        raise ValueError("utilization must lie in (0, 1)")
    built: List[TaskChain] = []
    top_priority = chains * tasks_per_chain
    weight_total = tasks_per_chain * (tasks_per_chain + 1) // 2
    for index in range(chains):
        period = _PERIOD_POOL[index]
        budget = utilization / chains * period
        tasks = []
        for k in range(tasks_per_chain):
            tasks.append(
                Task(
                    name=f"c{index}.t{k}",
                    priority=top_priority - (index * tasks_per_chain + k),
                    wcet=budget * (k + 1) / weight_total,
                )
            )
        built.append(
            TaskChain(
                name=f"c{index}",
                tasks=tasks,
                activation=PeriodicModel(period=period),
                deadline=2.0 * budget,
                kind=ChainKind.SYNCHRONOUS if index % 2 else ChainKind.ASYNCHRONOUS,
            )
        )
    return System(built, name=name)


def soak_activations(
    system: System, events: int
) -> Tuple[Dict[str, List[float]], float]:
    """Worst-case streams with golden-ratio staggered offsets totalling
    at least ``events`` activations.

    Returns ``(activations, horizon)`` ready for ``Simulator.run``.
    The horizon is sized from the chains' aggregate activation rate
    with enough headroom that the staggered offsets cannot drop the
    total below ``events``.
    """
    from ..sim.activations import worst_case_stream

    if events < 1:
        raise ValueError("events must be positive")
    rate = sum(chain.activation.rate() for chain in system.chains)
    if rate <= 0:
        raise ValueError("system has no activation rate")
    horizon = (events + 2 * len(system.chains)) / rate
    activations: Dict[str, List[float]] = {}
    for index, chain in enumerate(system.chains):
        period = chain.activation.delta_minus(2)
        offset = (index + 1) * _GOLDEN % 1.0 * period
        activations[chain.name] = worst_case_stream(
            chain.activation, horizon, offset
        )
    return activations, horizon


def soak_workload(
    events: int = 1_000_000,
    chains: int = 12,
    tasks_per_chain: int = 3,
    utilization: float = 0.08,
) -> Tuple[System, Dict[str, List[float]], float]:
    """System plus activation streams for one soak run — the workload
    of the ``sim_soak`` benchmark section."""
    system = soak_system(
        chains=chains, tasks_per_chain=tasks_per_chain, utilization=utilization
    )
    activations, horizon = soak_activations(system, events)
    return system, activations, horizon
