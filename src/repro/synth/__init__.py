"""Evaluation workloads: the paper's case study and synthetic systems."""

from .automotive import (
    AutomotiveConfig,
    draw_period,
    generate_automotive_system,
    generate_feasible_automotive,
)
from .casestudy import calibrated_overload_curves, figure1_system, figure4_system
from .corpus import (
    CorpusError,
    CorpusManifest,
    CorpusSpec,
    generate_corpus,
    generate_entry,
)
from .generator import (
    GeneratorConfig,
    generate_feasible_system,
    generate_system,
    uunifast,
)
from .soak import soak_activations, soak_system, soak_workload
from .priorities import (
    exhaustive_assignments,
    labeled_random_systems,
    priority_values,
    random_assignment,
    random_systems,
)

__all__ = [
    "figure4_system",
    "figure1_system",
    "calibrated_overload_curves",
    "priority_values",
    "random_assignment",
    "random_systems",
    "labeled_random_systems",
    "exhaustive_assignments",
    "GeneratorConfig",
    "uunifast",
    "generate_system",
    "generate_feasible_system",
    "AutomotiveConfig",
    "draw_period",
    "generate_automotive_system",
    "generate_feasible_automotive",
    "soak_system",
    "soak_activations",
    "soak_workload",
    "CorpusSpec",
    "CorpusManifest",
    "CorpusError",
    "generate_corpus",
    "generate_entry",
]
