"""The paper's evaluation systems.

* :func:`figure4_system` — the industrial case study (Fig. 4): four
  chains, 13 tasks, two sporadic overload chains.  Experiments 1 and 2
  run on it; Tables I and II report its analysis.
* :func:`figure1_system` — the two-chain illustration of Fig. 1 used by
  the segment / active-segment / combination examples in the text.
* :func:`calibrated_overload_curves` — staircase arrival curves for the
  overload chains that reproduce the exact Table II transition points
  (see DESIGN.md §4: the printed two-parameter models cannot).
"""

from __future__ import annotations

from typing import Dict

from ..arrivals import ArrivalCurve, EventModel, PeriodicModel, SporadicModel
from ..model import ChainKind, System, SystemBuilder


def figure4_system(calibrated: bool = False) -> System:
    """The Thales-inspired case study of Fig. 4.

    Notation in the paper: chains ``sigma[delta_minus(2) : D]``, tasks
    ``tau[priority : wcet]``.  Chains sigma_c and sigma_d are periodic
    with period 200 and deadline 200; sigma_a and sigma_b are sporadic
    overload chains with minimum inter-arrival 700 and 600.

    ``calibrated=True`` swaps the overload activation models for the
    staircase curves of :func:`calibrated_overload_curves`, which
    reproduce Table II's exact dmm transition points.
    """
    builder = (
        SystemBuilder("figure4-case-study")
        .chain("sigma_d", PeriodicModel(200), deadline=200, kind=ChainKind.SYNCHRONOUS)
        .task("tau_d^1", priority=11, wcet=38)
        .task("tau_d^2", priority=10, wcet=6)
        .task("tau_d^3", priority=9, wcet=27)
        .task("tau_d^4", priority=5, wcet=6)
        .task("tau_d^5", priority=2, wcet=38)
        .chain("sigma_c", PeriodicModel(200), deadline=200, kind=ChainKind.SYNCHRONOUS)
        .task("tau_c^1", priority=8, wcet=4)
        .task("tau_c^2", priority=7, wcet=6)
        .task("tau_c^3", priority=1, wcet=41)
        .chain("sigma_b", SporadicModel(600), overload=True, kind=ChainKind.SYNCHRONOUS)
        .task("tau_b^1", priority=13, wcet=10)
        .task("tau_b^2", priority=12, wcet=10)
        .task("tau_b^3", priority=6, wcet=10)
        .chain("sigma_a", SporadicModel(700), overload=True, kind=ChainKind.SYNCHRONOUS)
        .task("tau_a^1", priority=4, wcet=10)
        .task("tau_a^2", priority=3, wcet=10)
    )
    system = builder.build()
    if calibrated:
        curves = calibrated_overload_curves()
        chains = []
        for chain in system.chains:
            if chain.name in curves:
                chains.append(chain.with_activation(curves[chain.name]))
            else:
                chains.append(chain)
        system = System(chains, name="figure4-case-study-calibrated")
    return system


def calibrated_overload_curves() -> Dict[str, EventModel]:
    """Overload arrival curves reproducing Table II exactly.

    The paper's tool evidently used trace-derived curves it does not
    print (DESIGN.md §4 proves no sporadic or periodic+jitter model can
    yield dmm transitions at k = 3, 76, 250).  These staircases keep the
    printed ``delta_minus(2)`` (700 / 600) and place ``delta_minus(3)``
    and ``delta_minus(4)`` inside the algebraically-required intervals

    * ``delta_minus(3)`` in (15131, 15331]  and
    * ``delta_minus(4)`` in (49931, 50131]

    so that ``Omega = eta_plus(200 (k-1) + 331) + 1`` steps from 3 to 4
    at k = 76 and from 4 to 5 at k = 250.  Beyond four events the curves
    extrapolate with the delta(4)-delta(3) spacing; this only matters for
    k far past the printed table.
    """
    return {
        "sigma_a": ArrivalCurve([0, 0, 700, 15_200, 50_000], tail_distance=34_800),
        "sigma_b": ArrivalCurve([0, 0, 600, 15_200, 50_000], tail_distance=34_800),
    }


def figure1_system() -> System:
    """The Fig. 1 illustration: chains sigma_a (6 tasks) and sigma_b
    (3 tasks) with the priorities printed next to each task.

    Used by the segment examples of Sec. IV: sigma_a has segments
    ``(tau_a^1, tau_a^2, tau_a^3)`` and ``(tau_a^5)`` and active segments
    ``(tau_a^1, tau_a^2)``, ``(tau_a^3)``, ``(tau_a^5)`` w.r.t. sigma_b.

    The paper gives no WCETs or activation models for this system, so we
    pick unit WCETs and well-separated periods; the structural examples
    do not depend on them.
    """
    return (
        SystemBuilder("figure1-illustration")
        .chain(
            "sigma_a",
            PeriodicModel(100),
            deadline=100,
            kind=ChainKind.SYNCHRONOUS,
            overload=True,
        )
        .task("tau_a^1", priority=7, wcet=1)
        .task("tau_a^2", priority=9, wcet=1)
        .task("tau_a^3", priority=5, wcet=1)
        .task("tau_a^4", priority=2, wcet=1)
        .task("tau_a^5", priority=4, wcet=1)
        .task("tau_a^6", priority=1, wcet=1)
        .chain("sigma_b", PeriodicModel(50), deadline=50, kind=ChainKind.SYNCHRONOUS)
        .task("tau_b^1", priority=8, wcet=1)
        .task("tau_b^2", priority=3, wcet=1)
        .task("tau_b^3", priority=6, wcet=1)
        .build()
    )
